(* Timing-model tests: bandwidth/latency sanity, predictor accounting, and
   end-to-end IPC plausibility on real translated workloads. *)

open Machine

let check = Alcotest.check

let mk_ev ?(pc = 0x1000) ?(cls = Ev.Alu) ?(src1 = -1) ?(dst = -1) ?(ea = 0)
    ?(taken = false) ?(target = 0) ?(pred = Ev.Not_control) ?(acc = -1)
    ?(strand_start = false) () =
  { Ev.default with pc; cls; src1; dst; ea; taken; target; pred; acc;
    strand_start; alpha_count = 1 }

(* ---------- slots ---------- *)

let test_slots_bandwidth () =
  let s = Uarch.Slots.create ~width:2 in
  check Alcotest.int "slot 1" 10 (Uarch.Slots.book s 10);
  check Alcotest.int "slot 2" 10 (Uarch.Slots.book s 10);
  check Alcotest.int "overflow to next cycle" 11 (Uarch.Slots.book s 10);
  check Alcotest.int "later request ok" 20 (Uarch.Slots.book s 20)

(* ---------- ooo model ---------- *)

let test_ooo_ideal_ipc () =
  (* 4-wide machine fed independent single-cycle ops: IPC must approach 4 *)
  let m = Uarch.Ooo.create () in
  for i = 0 to 9999 do
    Uarch.Ooo.feed m (mk_ev ~pc:(0x1000 + (4 * (i mod 8))) ~dst:(i mod 16) ())
  done;
  let ipc = Uarch.Ooo.ipc m in
  check Alcotest.bool (Printf.sprintf "ipc near 4 (%.2f)" ipc) true
    (ipc > 3.5 && ipc <= 4.0)

let test_ooo_dependence_chain () =
  (* a strict dependence chain cannot exceed IPC 1 *)
  let m = Uarch.Ooo.create () in
  for i = 0 to 4999 do
    Uarch.Ooo.feed m (mk_ev ~pc:(0x1000 + (4 * (i mod 8))) ~src1:0 ~dst:0 ())
  done;
  let ipc = Uarch.Ooo.ipc m in
  check Alcotest.bool (Printf.sprintf "chain ipc <= 1 (%.2f)" ipc) true
    (ipc <= 1.01)

let test_ooo_mul_latency () =
  (* dependent multiplies: ~1/7 IPC *)
  let m = Uarch.Ooo.create () in
  for i = 0 to 2099 do
    Uarch.Ooo.feed m
      (mk_ev ~pc:(0x1000 + (4 * (i mod 8))) ~cls:Ev.Mul ~src1:0 ~dst:0 ())
  done;
  let ipc = Uarch.Ooo.ipc m in
  check Alcotest.bool (Printf.sprintf "mul chain ipc ~1/7 (%.3f)" ipc) true
    (ipc < 0.16 && ipc > 0.12)

let test_ooo_mispredict_penalty () =
  (* alternating direction-heavy unpredictable branches hurt IPC *)
  let rng = Machine.Rng.create 7 in
  let run ~random =
    let m = Uarch.Ooo.create () in
    for _i = 0 to 9999 do
      let taken = if random then Machine.Rng.bool rng else true in
      Uarch.Ooo.feed m
        (mk_ev ~pc:0x2000 ~cls:Ev.Cond_br ~taken
           ~target:(if taken then 0x3000 else 0x2004)
           ~pred:Ev.P_cond ());
      for k = 0 to 2 do
        Uarch.Ooo.feed m (mk_ev ~pc:(0x3000 + (4 * k)) ~dst:(k + 1) ())
      done
    done;
    Uarch.Ooo.ipc m
  in
  let predictable = run ~random:false in
  let unpredictable = run ~random:true in
  check Alcotest.bool
    (Printf.sprintf "random branches slower (%.2f < %.2f)" unpredictable predictable)
    true
    (unpredictable < predictable *. 0.7)

let test_ooo_dcache_miss_hurts () =
  let run stride =
    let m = Uarch.Ooo.create () in
    for i = 0 to 9999 do
      Uarch.Ooo.feed m
        (mk_ev ~cls:Ev.Load ~ea:(0x100000 + (i * stride)) ~src1:0 ~dst:1 ())
    done;
    Uarch.Ooo.ipc m
  in
  let hits = run 0 and misses = run 4096 in
  check Alcotest.bool
    (Printf.sprintf "thrashing loads slower (%.3f < %.3f)" misses hits)
    true (misses < hits /. 2.0)

(* ---------- ildp model ---------- *)

let test_ildp_parallel_strands () =
  (* 8 independent strands on 8 PEs: near-width IPC; on 1 PE: ~1 *)
  let run n_pe =
    let m =
      Uarch.Ildp.create
        ~params:{ Uarch.Ildp.default_params with n_pe; comm = 0 }
        ()
    in
    for i = 0 to 9999 do
      let acc = i mod 8 in
      Uarch.Ildp.feed m
        (mk_ev ~pc:(0x1000 + (4 * (i mod 8)))
           ~src1:(Ev.acc_token acc) ~dst:(Ev.acc_token acc) ~acc
           ~strand_start:(i < 8) ())
    done;
    Uarch.Ildp.ipc m
  in
  let wide = run 8 and narrow = run 1 in
  check Alcotest.bool (Printf.sprintf "8 PEs near 4-wide (%.2f)" wide) true
    (wide > 3.0);
  check Alcotest.bool (Printf.sprintf "1 PE serialises (%.2f)" narrow) true
    (narrow <= 1.01)

let test_ildp_comm_latency_costs () =
  (* a ping-pong dependence through GPRs between two strands *)
  let run comm =
    let m =
      Uarch.Ildp.create
        ~params:{ Uarch.Ildp.default_params with n_pe = 4; comm }
        ()
    in
    for i = 0 to 4999 do
      let acc = i mod 2 in
      (* each instruction reads the other strand's GPR output *)
      Uarch.Ildp.feed m
        (mk_ev
           ~pc:(0x1000 + (4 * (i mod 8)))
           ~src1:(1 - (i mod 2)) (* GPR written by the other strand *)
           ~dst:(i mod 2) ~acc
           ~strand_start:(i < 2) ())
    done;
    Uarch.Ildp.v_ipc m
  in
  let fast = run 0 and slow = run 2 in
  check Alcotest.bool (Printf.sprintf "comm=2 slower (%.3f < %.3f)" slow fast)
    true (slow < fast)

let test_ildp_boundary_drains () =
  let m = Uarch.Ildp.create () in
  for _ = 0 to 99 do
    Uarch.Ildp.feed m (mk_ev ~cls:Ev.Mul ~src1:0 ~dst:0 ())
  done;
  let c1 = Uarch.Ildp.cycles m in
  Uarch.Ildp.boundary m;
  Uarch.Ildp.feed m (mk_ev ());
  check Alcotest.bool "post-boundary fetch after drain" true
    (Uarch.Ildp.cycles m >= c1)

(* ---------- pred ---------- *)

let test_pred_counts_cond_mispredicts () =
  let p = Uarch.Pred.create () in
  let rng = Machine.Rng.create 99 in
  for _ = 0 to 999 do
    let taken = Machine.Rng.bool rng in
    ignore
      (Uarch.Pred.classify p
         (mk_ev ~pc:0x4000 ~cls:Ev.Cond_br ~taken ~target:0x5000 ~pred:Ev.P_cond ()))
  done;
  let mpki = Uarch.Pred.mpki p ~insns:1000 in
  check Alcotest.bool (Printf.sprintf "random branch mpki high (%.0f)" mpki) true
    (mpki > 300.0)

let test_pred_ras_nested () =
  let p = Uarch.Pred.create () in
  (* call call ret ret, correctly paired: no ret mispredicts *)
  let call pc target =
    ignore
      (Uarch.Pred.classify p
         (mk_ev ~pc ~cls:Ev.Call ~taken:true ~target ~pred:Ev.P_ras_call ()))
  in
  let ret pc target =
    Uarch.Pred.classify p
      (mk_ev ~pc ~cls:Ev.Ret ~taken:true ~target ~pred:Ev.P_ras_ret ())
  in
  call 0x1000 0x2000;
  call 0x2000 0x3000;
  check Alcotest.bool "inner ret predicted" true (ret 0x310 0x2004 = `Taken_ok);
  check Alcotest.bool "outer ret predicted" true (ret 0x210 0x1004 = `Taken_ok);
  check Alcotest.int "no mispredicts" 0 p.mispredicts

(* ---------- end-to-end: translated code through the timing models ---------- *)

let fig2_src =
  {|
  .text
_start:
  la    a0, buf
  ldiq  a1, 2000
  clr   v0
  clr   t0
L1:
  ldbu  t2, 0(a0)
  subq  a1, 1, a1
  lda   a0, 1(a0)
  xor   t0, t2, t2
  srl   t0, 8, t0
  and   t2, 0xff, t2
  s8addq t2, v0, t2
  addq  t2, t0, t0
  bne   a1, L1
  clr   v0
  call_pal 0
  .data
buf:
  .space 2048
  |}

let test_end_to_end_ildp_ipc () =
  let prog = Alpha.Assembler.assemble fig2_src in
  let cfg = { Core.Config.default with isa = Core.Config.Modified } in
  let vm = Core.Vm.create ~cfg ~kind:Core.Vm.Acc prog in
  let m = Uarch.Ildp.create () in
  let outcome =
    Core.Vm.run ~sink:(Uarch.Ildp.feed m) ~boundary:(fun () -> Uarch.Ildp.boundary m)
      ~fuel:1_000_000 vm
  in
  check Alcotest.bool "ran to completion" true (outcome = Core.Vm.Exit 0);
  let v = Uarch.Ildp.v_ipc m in
  check Alcotest.bool (Printf.sprintf "ILDP V-IPC plausible (%.2f)" v) true
    (v > 0.3 && v < 4.0)

let test_end_to_end_ooo_ipc () =
  let prog = Alpha.Assembler.assemble fig2_src in
  let st = Alpha.Interp.create prog in
  let m = Uarch.Ooo.create () in
  let outcome = Alpha.Interp.run_ev ~fuel:1_000_000 st ~sink:(Uarch.Ooo.feed m) in
  check Alcotest.bool "ran to completion" true (outcome = Alpha.Interp.Exit 0);
  let v = Uarch.Ooo.v_ipc m in
  check Alcotest.bool (Printf.sprintf "OoO V-IPC plausible (%.2f)" v) true
    (v > 0.5 && v <= 4.0)

let test_end_to_end_more_pes_not_slower () =
  let prog = Alpha.Assembler.assemble fig2_src in
  let run n_pe =
    let vm = Core.Vm.create ~kind:Core.Vm.Acc prog in
    let m =
      Uarch.Ildp.create ~params:{ Uarch.Ildp.default_params with n_pe } ()
    in
    ignore
      (Core.Vm.run ~sink:(Uarch.Ildp.feed m)
         ~boundary:(fun () -> Uarch.Ildp.boundary m)
         ~fuel:1_000_000 vm);
    Uarch.Ildp.v_ipc m
  in
  let p2 = run 2 and p8 = run 8 in
  check Alcotest.bool (Printf.sprintf "8 PE >= 2 PE (%.2f >= %.2f)" p8 p2) true
    (p8 >= p2 *. 0.98)

(* ---------- fast-forward tier: static annotation + sampling ---------- *)

let test_fastfwd_annotation_matches_models () =
  (* straight-line code, no branches: the per-event deltas must telescope
     to the warmed steady-state cost of the sequence under each model,
     measured here independently (feed once to warm, drain, feed again) *)
  let n = 64 in
  let evs =
    Array.init n (fun i ->
        mk_ev ~pc:(0x1000 + (4 * i)) ~src1:(i mod 4) ~dst:((i + 1) mod 16) ())
  in
  let ooo, ildp = Uarch.Fastfwd.annotate evs in
  check Alcotest.int "ooo costs length" n (Array.length ooo);
  check Alcotest.int "ildp costs length" n (Array.length ildp);
  Array.iter (fun c -> check Alcotest.bool "ooo cost >= 0" true (c >= 0)) ooo;
  Array.iter (fun c -> check Alcotest.bool "ildp cost >= 0" true (c >= 0)) ildp;
  let m = Uarch.Ooo.create () in
  Array.iter (Uarch.Ooo.feed m) evs;
  Uarch.Ooo.boundary m;
  let c0 = m.Uarch.Ooo.last_commit in
  Array.iter (Uarch.Ooo.feed m) evs;
  check Alcotest.int "ooo sum equals warmed model cost"
    (m.Uarch.Ooo.last_commit - c0)
    (Array.fold_left ( + ) 0 ooo);
  let m = Uarch.Ildp.create () in
  Array.iter (Uarch.Ildp.feed m) evs;
  Uarch.Ildp.boundary m;
  let c0 = m.Uarch.Ildp.last_commit in
  Array.iter (Uarch.Ildp.feed m) evs;
  check Alcotest.int "ildp sum equals warmed model cost"
    (m.Uarch.Ildp.last_commit - c0)
    (Array.fold_left ( + ) 0 ildp)

(* every engine bulk-charges the same per-slot static costs and refunds
   them identically on faults, so st_cycles must agree exactly *)
let st_cycles_of ~kind ~engine prog =
  let cfg = { Core.Config.default with engine } in
  let vm =
    Core.Vm.create ~cfg
      ~annotate:(fun evs -> Uarch.Fastfwd.annotate evs)
      ~kind prog
  in
  let outcome = Core.Vm.run ~fuel:1_000_000 vm in
  check Alcotest.bool "ran to completion" true (outcome = Core.Vm.Exit 0);
  match kind with
  | Core.Vm.Acc -> (Option.get (Core.Vm.acc_exec vm)).stats.st_cycles
  | Core.Vm.Straight_only ->
    (Option.get (Core.Vm.straight_exec vm)).stats.st_cycles

let test_fastfwd_static_cycles_engines_agree () =
  let prog = Alpha.Assembler.assemble fig2_src in
  List.iter
    (fun kind ->
      let st engine = st_cycles_of ~kind ~engine prog in
      let matched = st Core.Config.Matched in
      check Alcotest.bool "static cycles positive" true (matched > 0);
      check Alcotest.int "threaded agrees with matched" matched
        (st Core.Config.Threaded);
      check Alcotest.int "region agrees with matched" matched
        (st Core.Config.Region))
    [ Core.Vm.Acc; Core.Vm.Straight_only ]

let sampled_fig2 ~interval =
  let prog = Alpha.Assembler.assemble fig2_src in
  let vm = Core.Vm.create ~kind:Core.Vm.Acc prog in
  let m = Uarch.Ildp.create () in
  let ctl =
    Uarch.Fastfwd.create ~interval ~warmup:50 ~detail:100
      ~feed:(Uarch.Ildp.feed m)
      ~boundary:(fun () -> Uarch.Ildp.boundary m)
      ~cycles:(fun () -> m.Uarch.Ildp.last_commit)
      ()
  in
  let outcome =
    Core.Vm.run ~sink:(Uarch.Fastfwd.feed ctl)
      ~boundary:(fun () -> Uarch.Fastfwd.boundary ctl)
      ~fuel:1_000_000 vm
  in
  check Alcotest.bool "ran to completion" true (outcome = Core.Vm.Exit 0);
  (ctl, m)

let test_fastfwd_sampling_deterministic () =
  (* same program, same interval: the sampled results must be
     byte-identical once rendered (deterministic fields only) *)
  let json ctl =
    let module J = Obs.Json in
    J.to_string
      (J.Obj
         [ ("cycles", J.Int (Uarch.Fastfwd.cycles ctl));
           ("v_ipc", J.Float (Uarch.Fastfwd.v_ipc ctl));
           ("skip_ratio", J.Float (Uarch.Fastfwd.skip_ratio ctl)) ])
  in
  let a, _ = sampled_fig2 ~interval:500 in
  let b, _ = sampled_fig2 ~interval:500 in
  check Alcotest.bool "some instructions skipped" true
    (Uarch.Fastfwd.skip_ratio a > 0.0);
  check Alcotest.string "byte-identical sampled results" (json a) (json b)

let test_fastfwd_interval0_exact () =
  (* sampling off: the controller is a transparent wrapper and its cycle
     count equals the wrapped model's exactly *)
  let ctl, m = sampled_fig2 ~interval:0 in
  check Alcotest.int "interval=0 equals full fidelity" (Uarch.Ildp.cycles m)
    (Uarch.Fastfwd.cycles ctl);
  check (Alcotest.float 1e-9) "nothing skipped" 0.0
    (Uarch.Fastfwd.skip_ratio ctl)

let test_fastfwd_create_validates () =
  let mk ~interval ~warmup ~detail () =
    ignore
      (Uarch.Fastfwd.create ~interval ~warmup ~detail
         ~feed:(fun _ -> ())
         ~boundary:(fun () -> ())
         ~cycles:(fun () -> 0)
         ()
        : Uarch.Fastfwd.t)
  in
  Alcotest.check_raises "windows must leave a fast window"
    (Invalid_argument "Fastfwd.create: warmup + detail must leave a fast window")
    (mk ~interval:100 ~warmup:50 ~detail:50);
  Alcotest.check_raises "negative window"
    (Invalid_argument "Fastfwd.create: negative window")
    (mk ~interval:100 ~warmup:(-1) ~detail:10);
  (* interval 0 disables sampling and accepts any window sizes *)
  mk ~interval:0 ~warmup:50 ~detail:100 ()

let suite =
  [
    ("slot booking bandwidth", `Quick, test_slots_bandwidth);
    ("ooo: independent ops reach width", `Quick, test_ooo_ideal_ipc);
    ("ooo: dependence chain serialises", `Quick, test_ooo_dependence_chain);
    ("ooo: multiply latency", `Quick, test_ooo_mul_latency);
    ("ooo: mispredicts cost cycles", `Quick, test_ooo_mispredict_penalty);
    ("ooo: d-cache misses cost cycles", `Quick, test_ooo_dcache_miss_hurts);
    ("ildp: strands spread over PEs", `Quick, test_ildp_parallel_strands);
    ("ildp: communication latency costs", `Quick, test_ildp_comm_latency_costs);
    ("ildp: boundary drains pipeline", `Quick, test_ildp_boundary_drains);
    ("pred: random cond branches mispredict", `Quick, test_pred_counts_cond_mispredicts);
    ("pred: nested RAS pairs", `Quick, test_pred_ras_nested);
    ("end-to-end ILDP V-IPC", `Quick, test_end_to_end_ildp_ipc);
    ("end-to-end OoO V-IPC", `Quick, test_end_to_end_ooo_ipc);
    ("end-to-end more PEs helps", `Quick, test_end_to_end_more_pes_not_slower);
    ("fastfwd: annotation matches model cost", `Quick,
      test_fastfwd_annotation_matches_models);
    ("fastfwd: engines agree on static cycles", `Quick,
      test_fastfwd_static_cycles_engines_agree);
    ("fastfwd: sampling deterministic", `Quick,
      test_fastfwd_sampling_deterministic);
    ("fastfwd: interval=0 is exact", `Quick, test_fastfwd_interval0_exact);
    ("fastfwd: window validation", `Quick, test_fastfwd_create_validates);
  ]
