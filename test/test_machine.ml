(* Unit and property tests for the machine substrate: memory, caches,
   predictors, and the dual-address RAS. *)

open Machine

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---------- memory ---------- *)

let test_mem_rw () =
  let m = Memory.create () in
  Memory.map m ~addr:0x1000 ~len:0x1000;
  Memory.set_u8 m 0x1000 0xab;
  check Alcotest.int "u8" 0xab (Memory.get_u8 m 0x1000);
  Memory.set_u16 m 0x1010 0xbeef;
  check Alcotest.int "u16" 0xbeef (Memory.get_u16 m 0x1010);
  Memory.set_u32 m 0x1020 0xdeadbeef;
  check Alcotest.int "u32" 0xdeadbeef (Memory.get_u32 m 0x1020);
  Memory.set_i64 m 0x1040 0x1122334455667788L;
  check Alcotest.int64 "i64" 0x1122334455667788L (Memory.get_i64 m 0x1040)

let test_mem_endianness () =
  let m = Memory.create () in
  Memory.map m ~addr:0 ~len:64;
  Memory.set_i64 m 0 0x0807060504030201L;
  for i = 0 to 7 do
    check Alcotest.int (Printf.sprintf "byte %d" i) (i + 1) (Memory.get_u8 m i)
  done;
  check Alcotest.int "u16 at 2" 0x0403 (Memory.get_u16 m 2);
  check Alcotest.int "u32 at 4" 0x08070605 (Memory.get_u32 m 4)

let test_mem_fault () =
  let m = Memory.create () in
  Memory.map m ~addr:0x10000 ~len:0x100;
  check Alcotest.bool "mapped" true (Memory.is_mapped m 0x10000);
  check Alcotest.bool "unmapped" false (Memory.is_mapped m 0x90000);
  Alcotest.check_raises "fault" (Memory.Fault 0x90000) (fun () ->
      ignore (Memory.get_u8 m 0x90000))

let test_mem_cross_chunk () =
  let m = Memory.create () in
  (* chunk size is 64 KiB; write an i64 straddling the boundary *)
  Memory.map m ~addr:0 ~len:(2 * 65536);
  let addr = 65536 - 3 in
  Memory.set_i64 m addr 0x1020304050607080L;
  check Alcotest.int64 "straddle" 0x1020304050607080L (Memory.get_i64 m addr);
  let addr2 = 65536 - 1 in
  Memory.set_u16 m addr2 0xcafe;
  check Alcotest.int "straddle u16" 0xcafe (Memory.get_u16 m addr2)

let test_mem_dirty_tracking () =
  let m = Memory.create () in
  Memory.map m ~addr:0 ~len:(4 * 65536);
  Memory.set_u8 m 0x10 1;
  check Alcotest.(list int) "off by default: nothing recorded" []
    (Memory.dirty_chunks m);
  Memory.set_dirty_tracking m true;
  Memory.set_u8 m 0x20 2;
  Memory.set_i64 m (3 * 65536) 9L;
  (* a straddling store dirties both chunks via its decomposed halves *)
  Memory.set_i64 m (2 * 65536 - 4) 0x1122334455667788L;
  check Alcotest.(list int) "written chunks, sorted" [ 0; 1; 2; 3 ]
    (Memory.dirty_chunks m);
  check Alcotest.bool "chunk bytes reachable" true
    (Memory.chunk_bytes m 0 <> None);
  Memory.clear_dirty m;
  check Alcotest.(list int) "cleared" [] (Memory.dirty_chunks m);
  (* reads never dirty *)
  ignore (Memory.get_i64 m 0x10);
  check Alcotest.(list int) "reads don't dirty" [] (Memory.dirty_chunks m)

let prop_mem_roundtrip =
  QCheck.Test.make ~name:"memory i64 roundtrip" ~count:500
    QCheck.(pair (int_bound 0xfff0) int64)
    (fun (off, v) ->
      let m = Memory.create () in
      Memory.map m ~addr:0 ~len:0x10000;
      let addr = off land lnot 7 in
      Memory.set_i64 m addr v;
      Int64.equal (Memory.get_i64 m addr) v)

(* ---------- cache ---------- *)

let test_cache_hit_miss () =
  let c = Cache.create ~name:"t" ~size:1024 ~line:64 ~ways:2 ~policy:Cache.Lru in
  check Alcotest.bool "cold miss" false (Cache.access c 0);
  check Alcotest.bool "hit" true (Cache.access c 0);
  check Alcotest.bool "same line" true (Cache.access c 63);
  check Alcotest.bool "next line miss" false (Cache.access c 64)

let test_cache_lru_eviction () =
  (* 2-way, 8 sets of 64B lines: three lines mapping to set 0 *)
  let c = Cache.create ~name:"t" ~size:1024 ~line:64 ~ways:2 ~policy:Cache.Lru in
  let set_stride = 8 * 64 in
  ignore (Cache.access c 0);
  ignore (Cache.access c set_stride);
  ignore (Cache.access c 0);
  (* now LRU way holds [set_stride]; this evicts it *)
  ignore (Cache.access c (2 * set_stride));
  check Alcotest.bool "0 survives" true (Cache.probe c 0);
  check Alcotest.bool "stride evicted" false (Cache.probe c set_stride)

let test_cache_capacity () =
  let c = Cache.create ~name:"t" ~size:4096 ~line:64 ~ways:4 ~policy:Cache.Lru in
  (* touch exactly the capacity: everything should then hit *)
  for i = 0 to 63 do
    ignore (Cache.access c (i * 64))
  done;
  let hits = ref 0 in
  for i = 0 to 63 do
    if Cache.access c (i * 64) then incr hits
  done;
  check Alcotest.int "all hit at capacity" 64 !hits

let prop_cache_miss_bounded =
  QCheck.Test.make ~name:"cache misses <= accesses" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 200) (int_bound 0xffff))
    (fun addrs ->
      let c =
        Cache.create ~name:"t" ~size:2048 ~line:32 ~ways:2 ~policy:Cache.Random
      in
      List.iter (fun a -> ignore (Cache.access c a)) addrs;
      c.Cache.misses <= c.Cache.accesses && c.Cache.misses > 0)

(* ---------- memory hierarchy ---------- *)

let test_memhier_latencies () =
  let h = Memhier.create Memhier.default_cfg in
  let cold = Memhier.load h ~pe:0 0x4000 in
  check Alcotest.int "cold load = L1+L2+mem" (2 + 8 + 72) cold;
  let warm = Memhier.load h ~pe:0 0x4000 in
  check Alcotest.int "warm load = L1" 2 warm

let test_memhier_replication () =
  let h = Memhier.create ~replicas:4 Memhier.default_cfg in
  ignore (Memhier.store h 0x8000);
  (* the store installed the line in every replica *)
  for pe = 0 to 3 do
    check Alcotest.int
      (Printf.sprintf "replica %d hits" pe)
      2
      (Memhier.load h ~pe 0x8000)
  done

(* ---------- gshare ---------- *)

let test_gshare_learns_loop () =
  let g = Gshare.create () in
  (* strongly-taken loop branch: after warmup it should always predict taken *)
  let correct = ref 0 in
  for i = 1 to 100 do
    if Gshare.predict_update g 0x1000 ~taken:true then
      if i > 10 then incr correct
  done;
  check Alcotest.int "loop branch learned" 90 !correct

let test_gshare_alternating_with_history () =
  let g = Gshare.create () in
  (* strict alternation is captured by global history *)
  let correct = ref 0 in
  for i = 0 to 199 do
    let taken = i land 1 = 0 in
    if Gshare.predict_update g 0x2000 ~taken then if i >= 100 then incr correct
  done;
  check Alcotest.bool "alternation learned" true (!correct >= 95)

(* ---------- btb ---------- *)

let test_btb_basic () =
  let b = Btb.create () in
  check Alcotest.(option int) "cold" None (Btb.lookup b 0x1000);
  Btb.update b 0x1000 ~target:0x2000;
  check Alcotest.(option int) "after update" (Some 0x2000) (Btb.lookup b 0x1000);
  Btb.update b 0x1000 ~target:0x3000;
  check Alcotest.(option int) "retarget" (Some 0x3000) (Btb.lookup b 0x1000)

let test_btb_conflict_eviction () =
  let b = Btb.create ~entries:8 ~ways:2 () in
  (* 4 sets; pcs mapping to the same set differ by 4*4=16 bytes *)
  let stride = 4 * 4 in
  Btb.update b 0x1000 ~target:1;
  Btb.update b (0x1000 + stride) ~target:2;
  Btb.update b (0x1000 + (2 * stride)) ~target:3;
  check Alcotest.(option int) "LRU victim gone" None (Btb.lookup b 0x1000);
  check Alcotest.(option int) "newest present" (Some 3)
    (Btb.lookup b (0x1000 + (2 * stride)))

(* ---------- ras ---------- *)

let test_ras_lifo () =
  let r = Ras.create () in
  Ras.push r 1;
  Ras.push r 2;
  Ras.push r 3;
  check Alcotest.(option int) "pop 3" (Some 3) (Ras.pop r);
  check Alcotest.(option int) "pop 2" (Some 2) (Ras.pop r);
  check Alcotest.(option int) "pop 1" (Some 1) (Ras.pop r);
  check Alcotest.(option int) "empty" None (Ras.pop r)

let test_ras_overflow_wraps () =
  let r = Ras.create ~entries:4 () in
  for i = 1 to 6 do
    Ras.push r i
  done;
  (* deepest surviving entries are 3..6 *)
  check Alcotest.(option int) "pop 6" (Some 6) (Ras.pop r);
  check Alcotest.(option int) "pop 5" (Some 5) (Ras.pop r);
  check Alcotest.(option int) "pop 4" (Some 4) (Ras.pop r);
  check Alcotest.(option int) "pop 3" (Some 3) (Ras.pop r);
  check Alcotest.(option int) "empty after wrap" None (Ras.pop r)

(* ---------- dual-address RAS ---------- *)

let test_dras_match () =
  let d = Dual_ras.create () in
  Dual_ras.push d ~v_addr:0x1000 ~i_addr:(Some 77);
  check Alcotest.(option int) "verified pop" (Some 77)
    (Dual_ras.pop_verify d ~v_actual:0x1000)

let test_dras_mismatch () =
  let d = Dual_ras.create () in
  Dual_ras.push d ~v_addr:0x1000 ~i_addr:(Some 77);
  check Alcotest.(option int) "stale pair rejected" None
    (Dual_ras.pop_verify d ~v_actual:0x2000);
  check Alcotest.(option int) "empty stack rejected" None
    (Dual_ras.pop_verify d ~v_actual:0x1000)

let test_dras_nested_calls () =
  let d = Dual_ras.create () in
  Dual_ras.push d ~v_addr:10 ~i_addr:(Some 100);
  Dual_ras.push d ~v_addr:20 ~i_addr:(Some 200);
  check Alcotest.(option int) "inner" (Some 200) (Dual_ras.pop_verify d ~v_actual:20);
  check Alcotest.(option int) "outer" (Some 100) (Dual_ras.pop_verify d ~v_actual:10);
  check (Alcotest.float 0.01) "hit rate" 1.0 (Dual_ras.hit_rate d)

(* A call whose return point is untranslated pushes no I-address. The pop
   must verify the nesting (consume the slot) but report a miss — the old
   [-1] integer sentinel could leak out as a "live" target here. *)
let test_dras_untranslated_return () =
  let d = Dual_ras.create () in
  Dual_ras.push d ~v_addr:10 ~i_addr:(Some 100);
  Dual_ras.push d ~v_addr:20 ~i_addr:None;
  check Alcotest.(option int) "no-target pair is a miss" None
    (Dual_ras.pop_verify d ~v_actual:20);
  check Alcotest.(option int) "nesting stays aligned" (Some 100)
    (Dual_ras.pop_verify d ~v_actual:10);
  check Alcotest.int "only the live pop counts as a hit" 1 d.hits;
  check Alcotest.int "both pops counted" 2 d.pops

let prop_dras_balanced =
  QCheck.Test.make ~name:"dual-RAS: balanced call/return always verifies"
    ~count:200
    QCheck.(list_of_size (Gen.int_range 1 8) (pair small_nat small_nat))
    (fun pairs ->
      let d = Dual_ras.create () in
      List.iter (fun (v, i) -> Dual_ras.push d ~v_addr:v ~i_addr:(Some i)) pairs;
      List.for_all
        (fun (v, i) -> Dual_ras.pop_verify d ~v_actual:v = Some i)
        (List.rev pairs))

(* ---------- rng determinism ---------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next a) (Rng.next b)
  done

let suite =
  [
    ("memory read/write widths", `Quick, test_mem_rw);
    ("memory little-endian layout", `Quick, test_mem_endianness);
    ("memory fault on unmapped", `Quick, test_mem_fault);
    ("memory cross-chunk access", `Quick, test_mem_cross_chunk);
    ("memory dirty-chunk tracking", `Quick, test_mem_dirty_tracking);
    ("cache hit/miss", `Quick, test_cache_hit_miss);
    ("cache LRU eviction", `Quick, test_cache_lru_eviction);
    ("cache full capacity hits", `Quick, test_cache_capacity);
    ("memhier latency levels", `Quick, test_memhier_latencies);
    ("memhier store broadcast to replicas", `Quick, test_memhier_replication);
    ("gshare learns biased branch", `Quick, test_gshare_learns_loop);
    ("gshare learns alternation", `Quick, test_gshare_alternating_with_history);
    ("btb install/lookup/retarget", `Quick, test_btb_basic);
    ("btb conflict eviction", `Quick, test_btb_conflict_eviction);
    ("ras lifo order", `Quick, test_ras_lifo);
    ("ras circular overflow", `Quick, test_ras_overflow_wraps);
    ("dual-ras verified return", `Quick, test_dras_match);
    ("dual-ras mismatch falls through", `Quick, test_dras_mismatch);
    ("dual-ras nested calls", `Quick, test_dras_nested_calls);
    ("dual-ras untranslated return point", `Quick, test_dras_untranslated_return);
    ("rng determinism", `Quick, test_rng_deterministic);
    qtest prop_mem_roundtrip;
    qtest prop_cache_miss_bounded;
    qtest prop_dras_balanced;
  ]
