(* Unit tests for the superop idiom miner ({!Core.Superop}): n-gram
   mining determinism, ranking stability, and the idiom-table encoding
   that rides in snapshot format v4 — including rejection of malformed
   tables (the loader must never fuse garbage). *)

open Core.Superop

let check = Alcotest.check

(* A small shape vocabulary for hand-built profiles. *)
let add = Sh_alu (A_add, 0)
let addc = Sh_alu (A_add, 1)
let cmp = Sh_alu (A_cmp, 0)
let ld = Sh_load (8, false)
let st = Sh_store 8

let show tbl =
  String.concat " | "
    (Array.to_list
       (Array.map
          (fun i -> Printf.sprintf "%s@%d" (pattern_name i.pattern) i.weight)
          tbl))

(* ---------- mining determinism ---------- *)

(* Same profiles, any list order, any repetition of the call: the ranked
   table must come out bit-identical — it is persisted and compared
   across warm starts. *)
let test_mine_deterministic () =
  let profiles =
    [
      ([| add; ld; addc; st |], 7);
      ([| add; ld |], 3);
      ([| cmp; Sh_bc |], 11);
      ([| addc; st; add; ld |], 2);
    ]
  in
  let t1 = mine profiles in
  let t2 = mine profiles in
  check Alcotest.string "repeated call" (show t1) (show t2);
  let t3 = mine (List.rev profiles) in
  check Alcotest.string "profile order irrelevant" (show t1) (show t3);
  check Alcotest.bool "mined something" true (Array.length t1 > 0)

(* ---------- ranking stability ---------- *)

let test_mine_ranking () =
  (* distinct 2-grams with distinct weights: rank by weight descending *)
  let tbl = mine [ ([| add; ld |], 5); ([| cmp; st |], 9) ] in
  check Alcotest.string "weight descending" "cmp.rr;st8 | add.rr;ld8"
    (String.concat " | "
       (Array.to_list (Array.map (fun i -> pattern_name i.pattern) tbl)));
  (* one fragment executed 6 times: the 3-gram and both its 2-gram
     sub-windows all weigh 6, so longer patterns must rank first *)
  let tbl = mine [ ([| add; ld; st |], 6) ] in
  check Alcotest.int "window count" 3 (Array.length tbl);
  check Alcotest.int "longest pattern first" 3 (Array.length tbl.(0).pattern);
  (* equal weight and length: code-lexicographic, stable across runs *)
  let tbl = mine [ ([| add; ld |], 4); ([| add; st |], 4) ] in
  let names =
    Array.to_list (Array.map (fun i -> pattern_name i.pattern) tbl)
  in
  check (Alcotest.list Alcotest.string) "code-lex tie break"
    [ "add.rr;ld8"; "add.rr;st8" ] names

(* Windows that no template could fire on never enter the table:
   [Sh_misc] and [Sh_ctl] anywhere, [Sh_bc] anywhere but last; and
   zero-weight fragments contribute nothing. *)
let test_mine_skips_unfusable () =
  let has_shape s tbl =
    Array.exists (fun i -> Array.exists (fun x -> x = s) i.pattern) tbl
  in
  let tbl = mine [ ([| add; Sh_misc; ld |], 9) ] in
  check Alcotest.bool "misc never mined" false (has_shape Sh_misc tbl);
  let tbl = mine [ ([| add; Sh_ctl; ld |], 9) ] in
  check Alcotest.bool "ctl never mined" false (has_shape Sh_ctl tbl);
  let tbl = mine [ ([| cmp; Sh_bc; ld |], 9) ] in
  Array.iter
    (fun i ->
      Array.iteri
        (fun j s ->
          if s = Sh_bc then
            check Alcotest.int
              (pattern_name i.pattern ^ ": bc only terminal")
              (Array.length i.pattern - 1)
              j)
        i.pattern)
    tbl;
  check Alcotest.int "zero-weight profile mines nothing" 0
    (Array.length (mine [ ([| add; ld; st |], 0) ]))

let test_mine_top_cap () =
  let profiles =
    List.init 10 (fun k -> ([| Sh_alu (A_add, k mod 4); Sh_load (8, false) |], k + 1))
  in
  check Alcotest.bool "top cap honored" true
    (Array.length (mine ~top:3 profiles) <= 3)

(* ---------- fuse-time lookup ---------- *)

let test_enabled_and_longest_match () =
  let tbl = mine [ ([| add; ld; st |], 6) ] in
  let shapes = [| add; ld; st; cmp |] in
  check Alcotest.bool "3-gram enabled" true (enabled tbl shapes ~pos:0 ~len:3);
  check Alcotest.bool "2-gram enabled" true (enabled tbl shapes ~pos:0 ~len:2);
  check Alcotest.bool "unmined window" false (enabled tbl shapes ~pos:2 ~len:2);
  check Alcotest.int "longest match" 3
    (longest_match tbl shapes ~pos:0 ~max_len:4);
  check Alcotest.int "capped match" 2
    (longest_match tbl shapes ~pos:0 ~max_len:2);
  check Alcotest.int "no match" 0 (longest_match tbl shapes ~pos:3 ~max_len:4)

(* ---------- snapshot v4 idiom-table encoding ---------- *)

let test_table_roundtrip () =
  let tbl =
    mine
      [
        ([| add; ld; addc; st |], 7);
        ([| cmp; Sh_bc |], 11);
        ([| Sh_move; Sh_load (4, true); Sh_store 2 |], 3);
        ([| Sh_cmov; Sh_alu (A_mul, 2) |], 1);
      ]
  in
  check Alcotest.bool "mined something" true (Array.length tbl > 0);
  match decode_table (encode_table tbl) with
  | None -> Alcotest.fail "roundtrip rejected a well-formed table"
  | Some tbl' -> check Alcotest.string "roundtrip identity" (show tbl) (show tbl')

let test_table_rejects_malformed () =
  let reject what rows =
    check Alcotest.bool what true (decode_table rows = None)
  in
  reject "unknown shape code" [| ([| 255; 0 |], 5) |];
  reject "pattern too short" [| ([| 0 |], 5) |];
  reject "pattern too long" [| ([| 0; 0; 0; 0; 0 |], 5) |];
  reject "negative weight" [| ([| 0; 1 |], -1) |];
  (* one bad row poisons the whole table — the loader falls back to
     re-mining rather than fusing with a partial profile *)
  let good = encode_table (mine [ ([| add; ld |], 2) ]) in
  reject "bad row poisons table" (Array.append good [| ([| 255; 0 |], 1) |]);
  check Alcotest.bool "empty table is valid" true (decode_table [||] = Some [||])

let suite =
  [
    Alcotest.test_case "mining is deterministic" `Quick test_mine_deterministic;
    Alcotest.test_case "ranking is stable" `Quick test_mine_ranking;
    Alcotest.test_case "unfusable windows are skipped" `Quick
      test_mine_skips_unfusable;
    Alcotest.test_case "top cap honored" `Quick test_mine_top_cap;
    Alcotest.test_case "enabled / longest_match" `Quick
      test_enabled_and_longest_match;
    Alcotest.test_case "idiom table roundtrips" `Quick test_table_roundtrip;
    Alcotest.test_case "malformed idiom tables rejected" `Quick
      test_table_rejects_malformed;
  ]
