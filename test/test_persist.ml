(* Persistent translation-cache snapshots.

   The contract under test, from the bottom up:

   - Bin_io primitives roundtrip exactly (including min_int/max_int) and
     the CRC-32 matches the published IEEE check value;
   - a saved snapshot survives encode -> decode structurally unchanged,
     and its byte encoding is deterministic;
   - every kind of damage — bit flips anywhere in the file, truncation at
     every prefix length, bad magic, version skew, trailing garbage — is
     rejected with {!Persist.Snapshot.Error}, never loaded;
   - a snapshot taken under one configuration or program is rejected by a
     VM with any other (fingerprint invalidation);
   - a warm-started VM is observationally identical to a cold one (output,
     register checksum, outcome) while forming zero superblocks and
     spending strictly less translation-phase work, across backends and
     engines, including through the lockstep oracle in all modes;
   - the cache survives a flush *after* a warm start (generation
     invalidation of restored state);
   - [Tcache.clear] drops the patch log's backing storage, so repeated
     flush cycles cannot grow it without bound (the satellite fix). *)

open Oracle

let check = Alcotest.check

(* ---------- Bin_io ---------- *)

let test_bin_io_roundtrip () =
  let module B = Persist.Bin_io in
  let w = B.writer () in
  B.u8 w 0;
  B.u8 w 255;
  B.u32 w 0xdeadbeef;
  B.int w max_int;
  B.int w min_int;
  B.int w (-1);
  B.bool w true;
  B.bool w false;
  B.str w "";
  B.str w "hello, \x00 world";
  let r = B.reader (B.contents w) in
  check Alcotest.int "u8 lo" 0 (B.read_u8 r);
  check Alcotest.int "u8 hi" 255 (B.read_u8 r);
  check Alcotest.int "u32" 0xdeadbeef (B.read_u32 r);
  check Alcotest.int "max_int" max_int (B.read_int r);
  check Alcotest.int "min_int" min_int (B.read_int r);
  check Alcotest.int "minus one" (-1) (B.read_int r);
  check Alcotest.bool "true" true (B.read_bool r);
  check Alcotest.bool "false" false (B.read_bool r);
  check Alcotest.string "empty str" "" (B.read_str r);
  check Alcotest.string "str" "hello, \x00 world" (B.read_str r);
  check Alcotest.bool "eof" true (B.eof r)

let test_bin_io_truncated () =
  let module B = Persist.Bin_io in
  let r = B.reader "\x01\x02" in
  ignore (B.read_u8 r);
  (match B.read_u32 r with
  | _ -> Alcotest.fail "truncated u32 must raise"
  | exception B.Error msg ->
    check Alcotest.bool "position in message" true
      (String.length msg > 0 && String.sub msg 0 5 = "byte "));
  let r = B.reader "\x07" in
  match B.read_bool r with
  | _ -> Alcotest.fail "bad boolean byte must raise"
  | exception B.Error _ -> ()

let test_crc32 () =
  (* the IEEE 802.3 check value for the standard test vector *)
  check Alcotest.int "crc(123456789)" 0xcbf43926
    (Persist.Bin_io.crc32 "123456789");
  check Alcotest.int "crc(empty)" 0 (Persist.Bin_io.crc32 "")

(* ---------- building VMs and snapshots ---------- *)

let prog_of_seed seed = Gen.assemble (Gen.generate ~seed)

let cfg_of ?(engine = Core.Config.Threaded) (mode : Lockstep.mode) =
  { Core.Config.default with
    isa = mode.isa; chaining = mode.chaining; fuse_mem = mode.fuse_mem;
    hot_threshold = 10; engine }

let base_mode =
  { Lockstep.kind = Core.Vm.Acc; isa = Core.Config.Modified;
    chaining = Core.Config.Sw_pred_ras; fuse_mem = false }

let run_cold ?(mode = base_mode) ?engine prog =
  let vm = Core.Vm.create ~cfg:(cfg_of ?engine mode) ~kind:mode.kind prog in
  let outcome = Core.Vm.run ~fuel:5_000_000 vm in
  (vm, outcome)

let snapshot_of ?(mode = base_mode) ?engine prog =
  let vm, _ = run_cold ~mode ?engine prog in
  Core.Vm.save_snapshot vm

(* ---------- container roundtrip and determinism ---------- *)

let test_roundtrip () =
  let prog = prog_of_seed 3 in
  let snap = snapshot_of prog in
  let bytes = Persist.Snapshot.to_string snap in
  let back = Persist.Snapshot.of_string bytes in
  check Alcotest.bool "fingerprint" true (back.fingerprint = snap.fingerprint);
  (match (snap.body, back.body) with
  | Persist.Snapshot.B_acc a, Persist.Snapshot.B_acc b ->
    check Alcotest.int "slots" (Array.length a.slots) (Array.length b.slots);
    check Alcotest.bool "slots equal" true (a.slots = b.slots);
    check Alcotest.bool "frags equal" true (a.frags = b.frags);
    check Alcotest.bool "peis equal" true (a.peis = b.peis);
    check Alcotest.bool "exits equal" true (a.exits = b.exits);
    check Alcotest.bool "slot_alpha equal" true (a.slot_alpha = b.slot_alpha);
    check Alcotest.bool "slot_class equal" true (a.slot_class = b.slot_class);
    check Alcotest.bool "slot_cyc_ooo equal" true
      (a.slot_cyc_ooo = b.slot_cyc_ooo);
    check Alcotest.bool "slot_cyc_ildp equal" true
      (a.slot_cyc_ildp = b.slot_cyc_ildp);
    check Alcotest.int "dispatch slot" a.dispatch_slot b.dispatch_slot;
    check Alcotest.bool "unique vpcs equal" true (a.unique_vpcs = b.unique_vpcs)
  | _ -> Alcotest.fail "backend tag changed in roundtrip");
  (* byte-deterministic: saving the same run twice encodes identically *)
  let bytes' = Persist.Snapshot.to_string (snapshot_of prog) in
  check Alcotest.bool "deterministic encoding" true (bytes = bytes')

let test_straight_roundtrip () =
  let mode =
    { Lockstep.kind = Core.Vm.Straight_only; isa = Core.Config.Modified;
      chaining = Core.Config.Sw_pred_ras; fuse_mem = false }
  in
  let prog = prog_of_seed 4 in
  let snap = snapshot_of ~mode prog in
  let back = Persist.Snapshot.of_string (Persist.Snapshot.to_string snap) in
  match (snap.body, back.body) with
  | Persist.Snapshot.B_straight a, Persist.Snapshot.B_straight b ->
    check Alcotest.bool "straight slots equal" true (a.slots = b.slots)
  | _ -> Alcotest.fail "expected straight bodies"

(* Static cycle annotations (the fast-forward tier) travel with the
   snapshot: a warm start from an annotated VM restores the per-slot
   costs byte-for-byte instead of recomputing them. *)
let test_annotations_roundtrip () =
  let prog = prog_of_seed 3 in
  let annotate evs = Uarch.Fastfwd.annotate evs in
  let cfg = cfg_of base_mode in
  let cold = Core.Vm.create ~cfg ~annotate ~kind:Core.Vm.Acc prog in
  ignore (Core.Vm.run ~fuel:5_000_000 cold : Core.Vm.outcome);
  let snap =
    Persist.Snapshot.of_string
      (Persist.Snapshot.to_string (Core.Vm.save_snapshot cold))
  in
  (match snap.body with
  | Persist.Snapshot.B_acc c ->
    check Alcotest.int "ooo annotations ops-parallel" (Array.length c.slots)
      (Array.length c.slot_cyc_ooo);
    check Alcotest.int "ildp annotations ops-parallel" (Array.length c.slots)
      (Array.length c.slot_cyc_ildp);
    check Alcotest.bool "some annotation positive" true
      (Array.exists (fun x -> x > 0) c.slot_cyc_ildp)
  | Persist.Snapshot.B_straight _ -> Alcotest.fail "expected acc body");
  let warm = Core.Vm.create ~cfg ~annotate ~snapshot:snap ~kind:Core.Vm.Acc prog in
  let vec_list v = List.init (Machine.Vec.length v) (Machine.Vec.get v) in
  let cyc vm = vec_list (Option.get (Core.Vm.acc_ctx vm)).slot_cyc_ildp in
  check Alcotest.bool "warm start restores annotations" true
    (cyc warm = cyc cold)

(* ---------- damage rejection ---------- *)

let expect_error name f =
  match f () with
  | _ -> Alcotest.failf "%s: damaged snapshot was accepted" name
  | exception Persist.Snapshot.Error _ -> ()

let test_corruption_rejected () =
  let bytes = Persist.Snapshot.to_string (snapshot_of (prog_of_seed 5)) in
  let n = String.length bytes in
  (* flip one byte at a spread of positions across the file *)
  let step = max 1 (n / 37) in
  let pos = ref 0 in
  while !pos < n do
    let b = Bytes.of_string bytes in
    Bytes.set b !pos (Char.chr (Char.code (Bytes.get b !pos) lxor 0x40));
    expect_error
      (Printf.sprintf "flip@%d" !pos)
      (fun () -> Persist.Snapshot.of_string (Bytes.to_string b));
    pos := !pos + step
  done

let test_truncation_rejected () =
  let bytes = Persist.Snapshot.to_string (snapshot_of (prog_of_seed 5)) in
  let n = String.length bytes in
  List.iter
    (fun k ->
      expect_error
        (Printf.sprintf "truncate@%d" k)
        (fun () -> Persist.Snapshot.of_string (String.sub bytes 0 k)))
    [ 0; 1; 7; 8; 12; 16; 20; n / 2; n - 1 ]

let test_framing_rejected () =
  let bytes = Persist.Snapshot.to_string (snapshot_of (prog_of_seed 5)) in
  expect_error "bad magic" (fun () ->
      Persist.Snapshot.of_string ("XLDPSNAP" ^ String.sub bytes 8 (String.length bytes - 8)));
  expect_error "trailing garbage" (fun () ->
      Persist.Snapshot.of_string (bytes ^ "x"));
  (* version skew: bump the little-endian version word at offset 8 *)
  let b = Bytes.of_string bytes in
  Bytes.set b 8 (Char.chr (Char.code (Bytes.get b 8) + 1));
  expect_error "version skew" (fun () ->
      Persist.Snapshot.of_string (Bytes.to_string b))

(* ---------- idiom table (snapshot format v4) ---------- *)

(* The mined idiom table rides in the cache body: a cold run that entered
   fragments produces a non-empty ranked table, and it survives the byte
   encoding exactly (the warm start fuses with it immediately). *)
let test_idiom_table_roundtrip () =
  let snap = snapshot_of (prog_of_seed 3) in
  let back = Persist.Snapshot.of_string (Persist.Snapshot.to_string snap) in
  match (snap.body, back.body) with
  | Persist.Snapshot.B_acc a, Persist.Snapshot.B_acc b ->
    check Alcotest.bool "profile mined a non-empty idiom table" true
      (Array.length a.idioms > 0);
    check Alcotest.bool "idiom rows equal after roundtrip" true
      (a.idioms = b.idioms);
    (match Core.Superop.decode_table b.idioms with
    | Some tbl ->
      check Alcotest.int "decoded table row-parallel" (Array.length b.idioms)
        (Array.length tbl)
    | None -> Alcotest.fail "persisted idiom table failed to decode")
  | _ -> Alcotest.fail "expected acc bodies"

(* A structurally corrupt idiom table behind a *valid* container CRC
   (re-encoding recomputes it) must still be rejected at load — semantic
   validation cannot hide behind the checksum. *)
let test_corrupt_idiom_table_rejected () =
  let prog = prog_of_seed 6 in
  let snap = snapshot_of prog in
  let poison idioms =
    match snap.body with
    | Persist.Snapshot.B_acc c ->
      { snap with Persist.Snapshot.body = Persist.Snapshot.B_acc { c with idioms } }
    | Persist.Snapshot.B_straight _ -> Alcotest.fail "expected acc body"
  in
  let load s =
    let s = Persist.Snapshot.of_string (Persist.Snapshot.to_string s) in
    ignore
      (Core.Vm.create ~cfg:(cfg_of base_mode) ~snapshot:s ~kind:Core.Vm.Acc prog
        : Core.Vm.t)
  in
  expect_error "unknown shape code" (fun () ->
      load (poison [| ([| 255; 0 |], 1) |]));
  expect_error "bad n-gram length" (fun () -> load (poison [| ([| 0 |], 1) |]));
  expect_error "negative weight" (fun () ->
      load (poison [| ([| 0; 1 |], -3) |]));
  (* and the unpoisoned snapshot still loads *)
  load snap

(* ---------- fingerprint invalidation ---------- *)

let test_fingerprint_rejected () =
  let prog = prog_of_seed 6 in
  let snap = snapshot_of prog in
  let load ?(prog = prog) cfg kind =
    ignore (Core.Vm.create ~cfg ~snapshot:snap ~kind prog : Core.Vm.t)
  in
  let cfg = cfg_of base_mode in
  expect_error "isa" (fun () ->
      load { cfg with isa = Core.Config.Basic } Core.Vm.Acc);
  expect_error "chaining" (fun () ->
      load { cfg with chaining = Core.Config.No_pred } Core.Vm.Acc);
  expect_error "engine" (fun () ->
      load { cfg with engine = Core.Config.Matched } Core.Vm.Acc);
  expect_error "hot threshold" (fun () ->
      load { cfg with hot_threshold = 11 } Core.Vm.Acc);
  expect_error "n_accs" (fun () -> load { cfg with n_accs = 8 } Core.Vm.Acc);
  expect_error "fuse_mem" (fun () ->
      load { cfg with fuse_mem = true } Core.Vm.Acc);
  expect_error "backend" (fun () -> load cfg Core.Vm.Straight_only);
  expect_error "program" (fun () ->
      load ~prog:(prog_of_seed 7) cfg Core.Vm.Acc);
  (* and the matching cold configuration still accepts it *)
  load cfg Core.Vm.Acc

let test_mismatch_report () =
  let fp =
    Core.Config.fingerprint (cfg_of base_mode) ~backend:"acc" ~image_digest:"d"
  in
  check Alcotest.int "compatible: no mismatches" 0
    (List.length (Persist.Snapshot.fingerprint_mismatches ~got:fp ~want:fp));
  let other = { fp with Persist.Snapshot.fp_isa = "basic"; fp_n_accs = 8 } in
  check Alcotest.int "two mismatches" 2
    (List.length (Persist.Snapshot.fingerprint_mismatches ~got:other ~want:fp))

(* ---------- warm start equivalence ---------- *)

let warm_equals_cold ?(mode = base_mode) ?engine prog =
  let cold_vm, cold_outcome = run_cold ~mode ?engine prog in
  let snap =
    Persist.Snapshot.of_string
      (Persist.Snapshot.to_string (Core.Vm.save_snapshot cold_vm))
  in
  let warm_vm =
    Core.Vm.create ~cfg:(cfg_of ?engine mode) ~snapshot:snap ~kind:mode.kind
      prog
  in
  let warm_outcome = Core.Vm.run ~fuel:5_000_000 warm_vm in
  check Alcotest.bool "same outcome" true (warm_outcome = cold_outcome);
  check Alcotest.string "same output" (Core.Vm.output cold_vm)
    (Core.Vm.output warm_vm);
  check Alcotest.bool "same checksum" true
    (Core.Vm.reg_checksum cold_vm = Core.Vm.reg_checksum warm_vm);
  check Alcotest.int "warm forms no superblocks" 0 warm_vm.superblocks;
  if cold_vm.superblocks > 0 then
    check Alcotest.bool "translation phase shrank" true
      ((Core.Vm.cost warm_vm).Core.Cost.translate_units
      < (Core.Vm.cost cold_vm).Core.Cost.translate_units);
  (cold_vm, warm_vm)

let test_warm_equivalence () =
  for seed = 1 to 5 do
    ignore (warm_equals_cold (prog_of_seed seed))
  done

let test_warm_equivalence_matched_engine () =
  ignore (warm_equals_cold ~engine:Core.Config.Matched (prog_of_seed 2))

let test_warm_equivalence_straight () =
  let mode =
    { Lockstep.kind = Core.Vm.Straight_only; isa = Core.Config.Modified;
      chaining = Core.Config.No_pred; fuse_mem = false }
  in
  ignore (warm_equals_cold ~mode (prog_of_seed 8))

(* The threaded engine's closure shadow is compiled eagerly on load
   (prewarm): every restored slot is executable before the first run. *)
let test_prewarm_compiles_closures () =
  let prog = prog_of_seed 9 in
  let snap = snapshot_of prog in
  let slots =
    match snap.body with
    | Persist.Snapshot.B_acc c -> Array.length c.slots
    | Persist.Snapshot.B_straight _ -> Alcotest.fail "expected acc body"
  in
  let vm =
    Core.Vm.create ~cfg:(cfg_of base_mode) ~snapshot:snap ~kind:Core.Vm.Acc
      prog
  in
  let ex = Option.get (Core.Vm.acc_exec vm) in
  check Alcotest.int "all restored slots compiled" slots ex.Core.Exec_acc.ops_len

(* A flush after a warm start must invalidate every restored structure
   (generation bump) and still leave a correct VM. *)
let test_flush_after_warm () =
  let prog = prog_of_seed 10 in
  let cold_vm, cold_outcome = run_cold prog in
  let snap = Core.Vm.save_snapshot cold_vm in
  let warm_vm =
    Core.Vm.create ~cfg:(cfg_of base_mode) ~snapshot:snap ~kind:Core.Vm.Acc
      prog
  in
  Core.Vm.flush warm_vm;
  let outcome = Core.Vm.run ~fuel:5_000_000 warm_vm in
  check Alcotest.bool "outcome after flush" true (outcome = cold_outcome);
  check Alcotest.string "output after flush" (Core.Vm.output cold_vm)
    (Core.Vm.output warm_vm)

(* ---------- the oracle proves warm == cold in every mode ---------- *)

let test_oracle_warm_start_all_modes () =
  List.iter
    (fun seed ->
      let prog = prog_of_seed seed in
      List.iter
        (fun mode ->
          let name =
            Printf.sprintf "warm seed %d %s" seed (Lockstep.mode_name mode)
          in
          match Lockstep.run ~warm_start:true ~mode prog with
          | Lockstep.Agree c ->
            check Alcotest.bool (name ^ " retired > 0") true
              (c.Lockstep.retired > 0)
          | Lockstep.Diverge d ->
            Alcotest.failf "%s diverged:@\n%a" name Lockstep.pp_divergence d)
        Lockstep.all_modes)
    [ 11; 12 ]

(* ---------- patch-log trim on flush (satellite) ---------- *)

let test_patch_log_trimmed_on_flush () =
  let tc = Core.Tcache.Acc.create () in
  let insn = Accisa.Insn.Br { target = 0 } in
  for _cycle = 1 to 5 do
    for _ = 1 to 4096 do
      ignore (Core.Tcache.Acc.push tc insn : int)
    done;
    for slot = 0 to 4095 do
      Core.Tcache.Acc.patch tc slot insn
    done;
    check Alcotest.int "patches logged" 4096
      (Core.Tcache.Acc.patch_count tc);
    Core.Tcache.Acc.clear tc;
    (* the backing array must shrink back, not merely the length *)
    check Alcotest.bool "patch log storage trimmed" true
      (Core.Tcache.Acc.patch_log_capacity tc <= 16)
  done

let test_vec_reset () =
  let v = Machine.Vec.create ~dummy:0 in
  for i = 1 to 10_000 do
    Machine.Vec.push v i
  done;
  check Alcotest.bool "grown" true (Machine.Vec.capacity v >= 10_000);
  Machine.Vec.reset v;
  check Alcotest.int "empty" 0 (Machine.Vec.length v);
  check Alcotest.bool "storage dropped" true (Machine.Vec.capacity v <= 16);
  Machine.Vec.push v 42;
  check Alcotest.int "usable after reset" 42 (Machine.Vec.get v 0)

let suite =
  [
    Alcotest.test_case "bin_io roundtrip" `Quick test_bin_io_roundtrip;
    Alcotest.test_case "bin_io truncation" `Quick test_bin_io_truncated;
    Alcotest.test_case "crc32 check value" `Quick test_crc32;
    Alcotest.test_case "snapshot roundtrip (acc)" `Quick test_roundtrip;
    Alcotest.test_case "snapshot roundtrip (straight)" `Quick
      test_straight_roundtrip;
    Alcotest.test_case "cycle annotations roundtrip" `Quick
      test_annotations_roundtrip;
    Alcotest.test_case "bit flips rejected" `Quick test_corruption_rejected;
    Alcotest.test_case "truncation rejected" `Quick test_truncation_rejected;
    Alcotest.test_case "framing damage rejected" `Quick test_framing_rejected;
    Alcotest.test_case "idiom table roundtrips" `Quick
      test_idiom_table_roundtrip;
    Alcotest.test_case "corrupt idiom table rejected" `Quick
      test_corrupt_idiom_table_rejected;
    Alcotest.test_case "fingerprint mismatches rejected" `Quick
      test_fingerprint_rejected;
    Alcotest.test_case "mismatch report" `Quick test_mismatch_report;
    Alcotest.test_case "warm == cold (acc, threaded)" `Quick
      test_warm_equivalence;
    Alcotest.test_case "warm == cold (matched engine)" `Quick
      test_warm_equivalence_matched_engine;
    Alcotest.test_case "warm == cold (straight)" `Quick
      test_warm_equivalence_straight;
    Alcotest.test_case "prewarm compiles closures" `Quick
      test_prewarm_compiles_closures;
    Alcotest.test_case "flush after warm start" `Quick test_flush_after_warm;
    Alcotest.test_case "oracle warm start, all modes" `Slow
      test_oracle_warm_start_all_modes;
    Alcotest.test_case "patch log trimmed on flush" `Quick
      test_patch_log_trimmed_on_flush;
    Alcotest.test_case "Vec.reset drops storage" `Quick test_vec_reset;
  ]
