(* Worker pool and single-flight memo table: result ordering, exception
   propagation, dedup under contention, and the harness determinism
   guarantee (parallel prewarm changes nothing about rendered rows). *)

let check = Alcotest.check

(* ---------- Pool ---------- *)

let test_submit_await_ordering () =
  Harness.Pool.with_pool ~jobs:4 (fun pool ->
      let futs =
        List.init 100 (fun i -> Harness.Pool.submit pool (fun () -> i * i))
      in
      List.iteri
        (fun i fut ->
          check Alcotest.int
            (Printf.sprintf "job %d result" i)
            (i * i) (Harness.Pool.await fut))
        futs)

let test_await_twice () =
  Harness.Pool.with_pool ~jobs:2 (fun pool ->
      let fut = Harness.Pool.submit pool (fun () -> 42) in
      check Alcotest.int "first await" 42 (Harness.Pool.await fut);
      check Alcotest.int "second await" 42 (Harness.Pool.await fut))

exception Boom of string

let test_exception_propagation () =
  Harness.Pool.with_pool ~jobs:2 (fun pool ->
      let ok = Harness.Pool.submit pool (fun () -> "fine") in
      let bad = Harness.Pool.submit pool (fun () -> raise (Boom "worker")) in
      check Alcotest.string "good job unaffected" "fine" (Harness.Pool.await ok);
      match Harness.Pool.await bad with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom m -> check Alcotest.string "exn payload" "worker" m)

let test_pool_size_default () =
  let pool = Harness.Pool.create () in
  check Alcotest.int "default size" (Domain.recommended_domain_count ())
    (Harness.Pool.size pool);
  Harness.Pool.shutdown pool;
  Harness.Pool.shutdown pool (* idempotent *)

let test_submit_after_shutdown () =
  let pool = Harness.Pool.create ~jobs:1 () in
  Harness.Pool.shutdown pool;
  match Harness.Pool.submit pool (fun () -> ()) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* shutdown ~reject_queued: with the single worker pinned on a blocking
   job, queued futures can never have started; a drain-less shutdown must
   fail them all with Cancelled promptly — while the worker is still
   running — and the in-flight job must still complete normally. *)
let test_shutdown_rejects_queued () =
  let pool = Harness.Pool.create ~jobs:1 () in
  let gate = Mutex.create () in
  let turn = Condition.create () in
  let running = ref false in
  let release = ref false in
  let blocker =
    Harness.Pool.submit pool (fun () ->
        Mutex.lock gate;
        running := true;
        Condition.broadcast turn;
        while not !release do
          Condition.wait turn gate
        done;
        Mutex.unlock gate;
        "ran")
  in
  Mutex.lock gate;
  while not !running do
    Condition.wait turn gate
  done;
  Mutex.unlock gate;
  let queued =
    List.init 5 (fun i -> Harness.Pool.submit pool (fun () -> string_of_int i))
  in
  (* shutdown on another domain: it cancels the queued futures, then
     blocks joining the worker until the blocker is released *)
  let stopper =
    Domain.spawn (fun () -> Harness.Pool.shutdown ~reject_queued:true pool)
  in
  (* deterministic rejection: these awaits return (with Cancelled) while
     the only worker is still occupied — no hang, no execution *)
  List.iteri
    (fun i fut ->
      match Harness.Pool.await fut with
      | v -> Alcotest.failf "queued job %d ran: %s" i v
      | exception Harness.Pool.Cancelled -> ())
    queued;
  Mutex.lock gate;
  release := true;
  Condition.broadcast turn;
  Mutex.unlock gate;
  Domain.join stopper;
  check Alcotest.string "in-flight job still completed" "ran"
    (Harness.Pool.await blocker)

(* default shutdown still drains: queued jobs run to completion *)
let test_shutdown_drains_queued () =
  let pool = Harness.Pool.create ~jobs:1 () in
  let futs = List.init 20 (fun i -> Harness.Pool.submit pool (fun () -> i)) in
  Harness.Pool.shutdown pool;
  List.iteri
    (fun i fut -> check Alcotest.int "drained job" i (Harness.Pool.await fut))
    futs

(* many producers from distinct domains: all jobs complete exactly once *)
let test_pool_under_contention () =
  let counter = Atomic.make 0 in
  Harness.Pool.with_pool ~jobs:4 (fun pool ->
      let submitters =
        List.init 4 (fun _ ->
            Domain.spawn (fun () ->
                let futs =
                  List.init 50 (fun _ ->
                      Harness.Pool.submit pool (fun () ->
                          Atomic.incr counter))
                in
                List.iter Harness.Pool.await futs))
      in
      List.iter Domain.join submitters);
  check Alcotest.int "200 jobs ran once each" 200 (Atomic.get counter)

(* ---------- Memo (single-flight) ---------- *)

let test_memo_basic () =
  let tbl : (int, int) Harness.Memo.t = Harness.Memo.create 8 in
  let runs = ref 0 in
  let v = Harness.Memo.find_or_compute tbl 7 (fun () -> incr runs; 49) in
  check Alcotest.int "computed" 49 v;
  let v = Harness.Memo.find_or_compute tbl 7 (fun () -> incr runs; 0) in
  check Alcotest.int "cached" 49 v;
  check Alcotest.int "one computation" 1 !runs;
  check Alcotest.int "one entry" 1 (Harness.Memo.length tbl);
  check Alcotest.bool "mem" true (Harness.Memo.mem tbl 7)

let test_memo_single_flight_under_contention () =
  let tbl : (string, int) Harness.Memo.t = Harness.Memo.create 8 in
  let runs = Atomic.make 0 in
  let compute () =
    Atomic.incr runs;
    (* widen the race window so every domain requests mid-flight *)
    Unix.sleepf 0.05;
    123
  in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            Harness.Memo.find_or_compute tbl "key" compute))
  in
  let results = List.map Domain.join domains in
  List.iter (fun v -> check Alcotest.int "shared value" 123 v) results;
  check Alcotest.int "computed exactly once" 1 (Atomic.get runs)

let test_memo_failure_not_cached () =
  let tbl : (int, int) Harness.Memo.t = Harness.Memo.create 8 in
  (match Harness.Memo.find_or_compute tbl 1 (fun () -> raise (Boom "first")) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom _ -> ());
  check Alcotest.bool "failed key evicted" false (Harness.Memo.mem tbl 1);
  let v = Harness.Memo.find_or_compute tbl 1 (fun () -> 11) in
  check Alcotest.int "retry succeeds" 11 v

(* ---------- determinism: parallel prewarm = serial rendering ---------- *)

let render (e : Harness.Experiments.exp) =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  e.render fmt ~scale:1;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let exp id = Option.get (Harness.Experiments.find id)

let test_parallel_prewarm_deterministic () =
  let ids = [ "table2"; "fig4" ] in
  (* serial baseline: render with cold caches, 1 job *)
  Harness.Runner.reset_caches ();
  let serial =
    Harness.Pool.with_pool ~jobs:1 (fun pool ->
        List.map
          (fun id ->
            Harness.Runner.prewarm ~pool ((exp id).plan ~scale:1);
            render (exp id))
          ids)
  in
  (* parallel: cold caches again, 4 worker domains *)
  Harness.Runner.reset_caches ();
  let parallel =
    Harness.Pool.with_pool ~jobs:4 (fun pool ->
        List.map
          (fun id ->
            Harness.Runner.prewarm ~pool ((exp id).plan ~scale:1);
            render (exp id))
          ids)
  in
  List.iter2
    (fun id (s, p) ->
      check Alcotest.string (id ^ " byte-identical at --jobs 1 vs 4") s p)
    ids
    (List.combine serial parallel)

(* a prewarmed render never simulates: the plan covers every lookup *)
let test_plan_covers_render () =
  Harness.Runner.reset_caches ();
  Harness.Pool.with_pool ~jobs:2 (fun pool ->
      Harness.Runner.prewarm ~pool ((exp "fig5").plan ~scale:1));
  let before = Sys.time () in
  ignore (render (exp "fig5"));
  let cpu = Sys.time () -. before in
  (* formatting memoised rows takes microseconds; a simulation run takes
     whole seconds of CPU. 0.5 s leaves three orders of magnitude slack. *)
  check Alcotest.bool "render hit only warm caches" true (cpu < 0.5)

let suite =
  [
    ("pool: submit/await ordering", `Quick, test_submit_await_ordering);
    ("pool: await is repeatable", `Quick, test_await_twice);
    ("pool: exception propagation", `Quick, test_exception_propagation);
    ("pool: default size + double shutdown", `Quick, test_pool_size_default);
    ("pool: submit after shutdown", `Quick, test_submit_after_shutdown);
    ("pool: shutdown rejects queued futures", `Quick,
     test_shutdown_rejects_queued);
    ("pool: shutdown drains by default", `Quick, test_shutdown_drains_queued);
    ("pool: contention", `Quick, test_pool_under_contention);
    ("memo: basics", `Quick, test_memo_basic);
    ("memo: single-flight under contention", `Quick,
     test_memo_single_flight_under_contention);
    ("memo: failures retry", `Quick, test_memo_failure_not_cached);
    ("harness: --jobs 1 vs 4 byte-identical", `Slow,
     test_parallel_prewarm_deterministic);
    ("harness: plan covers render", `Slow, test_plan_covers_render);
  ]
