(* Telemetry registry tests.

   Three properties carry the subsystem's contract:

   - the registry itself (sums, high-water marks, histogram bucketing,
     spans, cross-domain merge-on-collect) behaves as specified;
   - disabled telemetry is observation-free: a run with the master switch
     off produces byte-identical architected state and statistics to a
     run with it on, and leaves every counter at zero;
   - enabled telemetry is *truthful*: after [Vm.publish_obs] the
     collected counters equal the VM's hand-rolled per-run stat structs
     — the very numbers the lockstep oracle validates exactly — across
     every backend/ISA/chaining mode, and Pool-sharded runs merge to the
     same totals as a serial sweep. *)

open Oracle

let check = Alcotest.check

let get snap name = Option.value ~default:0 (Obs.find snap name)

(* Every registry test owns the global state for its duration. *)
let fresh f () =
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.set_enabled false; Obs.reset ()) f

(* ---------- registry unit tests ---------- *)

let c_a = Obs.counter "test.a"
let c_b = Obs.counter "test.b"
let g = Obs.max_gauge "test.hw"
let h = Obs.histogram "test.hist" ~bounds:[| 2; 4; 8 |]
let sp = Obs.span "test.span"

let test_counters () =
  Obs.set_enabled true;
  Obs.bump c_a 3;
  Obs.bump c_a 4;
  Obs.bump c_b 1;
  check Alcotest.bool "same name, same handle" true (Obs.counter "test.a" = c_a);
  Obs.bump (Obs.counter "test.a") 10;
  let s = Obs.collect () in
  check Alcotest.int "sum" 17 (get s "test.a");
  check Alcotest.int "other counter" 1 (get s "test.b");
  Obs.reset ();
  check Alcotest.int "reset" 0 (get (Obs.collect ()) "test.a")

let test_max_gauge () =
  Obs.set_enabled true;
  Obs.set_max g 5;
  Obs.set_max g 12;
  Obs.set_max g 7;
  check Alcotest.int "high water" 12 (get (Obs.collect ()) "test.hw")

let test_histogram () =
  Obs.set_enabled true;
  List.iter (Obs.observe h) [ 1; 2; 3; 4; 9; 100 ];
  let s = Obs.collect () in
  let _, bounds, counts =
    List.find (fun (n, _, _) -> n = "test.hist") s.Obs.histograms
  in
  check (Alcotest.array Alcotest.int) "bounds" [| 2; 4; 8 |] bounds;
  (* <=2: {1,2}; <=4: {3,4}; <=8: {}; overflow: {9,100} *)
  check (Alcotest.array Alcotest.int) "buckets" [| 2; 2; 0; 2 |] counts

(* out-of-range observations land in the overflow bucket AND bump the
   companion ".saturated" counter — never dropped silently (the fixed
   satellite bug: values past the top bound used to vanish) *)
let test_histogram_saturation () =
  Obs.set_enabled true;
  List.iter (Obs.observe h) [ 1; 8; 9; 100; 1_000_000 ];
  let s = Obs.collect () in
  let _, _, counts =
    List.find (fun (n, _, _) -> n = "test.hist") s.Obs.histograms
  in
  check Alcotest.int "overflow bucket counts out-of-range" 3
    counts.(Array.length counts - 1);
  check Alcotest.int "saturation counter matches" 3
    (get s "test.hist.saturated");
  (* in-range observations never touch the saturation counter *)
  Obs.reset ();
  List.iter (Obs.observe h) [ 1; 2; 8 ];
  check Alcotest.int "in-range leaves it at zero" 0
    (get (Obs.collect ()) "test.hist.saturated")

let test_spans () =
  Obs.set_enabled true;
  let r = Obs.with_span sp (fun () -> 40 + 2) in
  check Alcotest.int "span returns f's value" 42 r;
  (try Obs.with_span sp (fun () -> failwith "boom") with Failure _ -> ());
  let s = Obs.collect () in
  let _, count, secs = List.find (fun (n, _, _) -> n = "test.span") s.Obs.spans in
  check Alcotest.int "count (incl. raising call)" 2 count;
  check Alcotest.bool "seconds non-negative" true (secs >= 0.0)

let test_disabled_is_noop () =
  Obs.set_enabled false;
  Obs.bump c_a 100;
  Obs.set_max g 100;
  Obs.observe h 1;
  check Alcotest.int "with_span is f ()" 7 (Obs.with_span sp (fun () -> 7));
  let s = Obs.collect () in
  check Alcotest.int "counter untouched" 0 (get s "test.a");
  check Alcotest.int "gauge untouched" 0 (get s "test.hw");
  let _, count, _ = List.find (fun (n, _, _) -> n = "test.span") s.Obs.spans in
  check Alcotest.int "span untouched" 0 count

let test_domain_merge () =
  Obs.set_enabled true;
  Obs.bump c_a 1;
  Obs.set_max g 3;
  let worker seed =
    Domain.spawn (fun () ->
        for _ = 1 to 1000 do
          Obs.bump c_a 1
        done;
        Obs.set_max g seed)
  in
  let ds = List.map worker [ 10; 4 ] in
  List.iter Domain.join ds;
  let s = Obs.collect () in
  check Alcotest.int "sums add across slabs" 2001 (get s "test.a");
  check Alcotest.int "maxes max across slabs" 10 (get s "test.hw")

(* ---------- VM runs: off = observation-free, on = truthful ---------- *)

(* Same shape as Test_exec_closure's probe: everything observable about a
   sink-less run, rendered to one comparable string. *)
let run_vm ~(mode : Lockstep.mode) image =
  let cfg =
    {
      Core.Config.default with
      isa = mode.isa;
      chaining = mode.chaining;
      fuse_mem = mode.fuse_mem;
      hot_threshold = 10;
    }
  in
  let vm = Core.Vm.create ~cfg ~kind:mode.kind image in
  let outcome =
    match Core.Vm.run ~fuel:10_000_000 vm with
    | Core.Vm.Exit c -> Printf.sprintf "exit:%d" c
    | Core.Vm.Fault tr -> Format.asprintf "trap:%a" Alpha.Interp.pp_trap tr
    | Core.Vm.Out_of_fuel -> "fuel"
  in
  Core.Vm.publish_obs vm;
  (vm, outcome)

let show_run (vm, outcome) =
  let stats =
    match (Core.Vm.acc_exec vm, Core.Vm.straight_exec vm) with
    | Some ex, _ ->
      Printf.sprintf "i_exec=%d by_class=[%s] alpha=%d enters=%d dras=%d/%d"
        ex.stats.i_exec
        (String.concat ";"
           (Array.to_list (Array.map string_of_int ex.stats.by_class)))
        ex.stats.alpha_retired ex.stats.frag_enters ex.stats.ret_dras_hits
        ex.stats.ret_dras_misses
    | None, Some ex ->
      Printf.sprintf "i_exec=%d by_class=[%s] alpha=%d enters=%d dras=%d/%d"
        ex.stats.i_exec
        (String.concat ";"
           (Array.to_list (Array.map string_of_int ex.stats.by_class)))
        ex.stats.alpha_retired ex.stats.frag_enters ex.stats.ret_dras_hits
        ex.stats.ret_dras_misses
    | None, None -> assert false
  in
  Printf.sprintf
    "outcome=%s output=%S regs=%#Lx interp=%d superblocks=%d \
     segs=%d/%d/%d/%d/%d flushes=%d %s"
    outcome (Core.Vm.output vm) (Core.Vm.reg_checksum vm) vm.interp_insns
    vm.superblocks vm.segs.branch_exits vm.segs.pal_exits
    vm.segs.dispatch_misses vm.segs.trap_recoveries vm.segs.fuel_stops
    vm.segs.flushes stats

let test_off_is_observation_free () =
  let image = Gen.assemble (Gen.generate ~seed:3) in
  List.iter
    (fun (mode : Lockstep.mode) ->
      let name = Lockstep.mode_name mode in
      Obs.set_enabled false;
      let off = show_run (run_vm ~mode image) in
      check Alcotest.int
        (name ^ ": nothing recorded while off")
        0
        (get (Obs.collect ()) "vm.runs");
      Obs.set_enabled true;
      let on = show_run (run_vm ~mode image) in
      Obs.set_enabled false;
      Obs.reset ();
      check Alcotest.string (name ^ ": off/on runs identical") off on)
    Lockstep.all_modes

(* After one published run, the registry must agree exactly with the
   stat structs the oracle validates. *)
let test_counters_match_stats () =
  let image = Gen.assemble (Gen.generate ~seed:5) in
  List.iter
    (fun (mode : Lockstep.mode) ->
      Obs.reset ();
      Obs.set_enabled true;
      let vm, _ = run_vm ~mode image in
      Obs.set_enabled false;
      let s = Obs.collect () in
      let n = Lockstep.mode_name mode in
      let chki what want got = check Alcotest.int (n ^ ": " ^ what) want got in
      chki "vm.runs" 1 (get s "vm.runs");
      chki "vm.interp_insns" vm.interp_insns (get s "vm.interp_insns");
      chki "vm.superblocks" vm.superblocks (get s "vm.superblocks");
      chki "vm.seg.branch_exits" vm.segs.branch_exits
        (get s "vm.seg.branch_exits");
      chki "vm.seg.pal_exits" vm.segs.pal_exits (get s "vm.seg.pal_exits");
      chki "vm.seg.dispatch_misses" vm.segs.dispatch_misses
        (get s "vm.seg.dispatch_misses");
      chki "vm.seg.trap_recoveries" vm.segs.trap_recoveries
        (get s "vm.seg.trap_recoveries");
      chki "vm.flushes" vm.segs.flushes (get s "vm.flushes");
      (match (Core.Vm.acc_exec vm, Core.Vm.straight_exec vm) with
      | Some ex, _ ->
        chki "engine.i_exec" ex.stats.i_exec (get s "engine.i_exec");
        chki "engine.alpha_retired" ex.stats.alpha_retired
          (get s "engine.alpha_retired");
        chki "engine.frag_enters" ex.stats.frag_enters
          (get s "engine.frag_enters");
        chki "engine.ret_dras_hits" ex.stats.ret_dras_hits
          (get s "engine.ret_dras_hits");
        chki "engine.class.copy" ex.stats.by_class.(1)
          (get s "engine.class.copy")
      | None, Some ex ->
        chki "engine.i_exec" ex.stats.i_exec (get s "engine.i_exec");
        chki "engine.alpha_retired" ex.stats.alpha_retired
          (get s "engine.alpha_retired");
        chki "engine.frag_enters" ex.stats.frag_enters
          (get s "engine.frag_enters")
      | None, None -> assert false);
      (* cache/translator counters are live (not published): sanity-link
         them to the run rather than to a struct *)
      if vm.superblocks > 0 then begin
        check Alcotest.bool (n ^ ": tcache.installs > 0") true
          (get s "tcache.installs" > 0);
        check Alcotest.bool (n ^ ": translate superblocks recorded") true
          (get s "translate.acc.superblocks"
           + get s "translate.straight.superblocks"
           > 0)
      end)
    Lockstep.all_modes

(* Pool-sharded runs must merge to the same counters as the same runs
   executed serially: slabs survive worker shutdown and sums/maxes are
   partition-independent. *)
let test_pool_merge_equals_serial () =
  let runs =
    List.concat_map
      (fun seed ->
        let image = Gen.assemble (Gen.generate ~seed) in
        List.map (fun mode -> (image, mode)) Lockstep.all_modes)
      [ 1; 2 ]
  in
  let totals ~jobs =
    Obs.reset ();
    Obs.set_enabled true;
    (if jobs = 1 then List.iter (fun (i, m) -> ignore (run_vm ~mode:m i)) runs
     else
       Harness.Pool.with_pool ~jobs (fun pool ->
           runs
           |> List.map (fun (i, m) ->
                  Harness.Pool.submit pool (fun () -> ignore (run_vm ~mode:m i)))
           |> List.iter Harness.Pool.await));
    Obs.set_enabled false;
    let s = Obs.collect () in
    ( s.Obs.counters,
      List.map (fun (n, _, counts) -> (n, Array.to_list counts)) s.Obs.histograms,
      List.map (fun (n, count, _) -> (n, count)) s.Obs.spans )
  in
  let c1, h1, sp1 = totals ~jobs:1 in
  let c3, h3, sp3 = totals ~jobs:3 in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "counters" c1 c3;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string (Alcotest.list Alcotest.int)))
    "histograms" h1 h3;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "span counts" sp1 sp3

(* ---------- JSON + envelope ---------- *)

let test_json_roundtrip () =
  let module J = Obs.Json in
  let doc =
    J.Obj
      [ ("s", J.String "a\"b\\c\ndé");
        ("i", J.Int (-42));
        ("f", J.Float 2.16);
        ("l", J.List [ J.Null; J.Bool true; J.Int 0 ]);
        ("empty", J.Obj []) ]
  in
  match J.parse_string (J.to_string doc) with
  | Error e -> Alcotest.fail e
  | Ok doc' ->
    check Alcotest.string "roundtrip" (J.to_string doc) (J.to_string doc');
    check Alcotest.int "member/to_int" (-42)
      (Option.get (Option.bind (J.member "i" doc') J.to_int))

let test_json_rejects_garbage () =
  let module J = Obs.Json in
  List.iter
    (fun s ->
      match J.parse_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s))
    [ ""; "{"; "[1,]"; "{\"a\":1} x"; "nul"; "\"\\q\"" ]

(* Parse errors must carry a byte position so a broken multi-megabyte
   baseline or snapshot-metadata file is debuggable. *)
let test_json_errors_carry_position () =
  let module J = Obs.Json in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun (input, expected) ->
      match J.parse_string input with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" input)
      | Error e ->
        check Alcotest.bool
          (Printf.sprintf "%S: %S mentions %S" input e expected)
          true (contains e expected))
    [ ("{\"a\":}", "parse error at byte 5");
      ("[1, 2, x]", "parse error at byte 7");
      ("{\"a\":1} x", "trailing garbage at byte 8") ]

(* Deep nesting exercises the recursive printer/parser pair well past any
   realistic document depth without blowing the stack. *)
let test_json_deep_nesting () =
  let module J = Obs.Json in
  let depth = 2_000 in
  let rec build n = if n = 0 then J.Int 7 else J.Obj [ ("k", J.List [ build (n - 1) ]) ] in
  let doc = build depth in
  match J.parse_string (J.to_string doc) with
  | Error e -> Alcotest.fail e
  | Ok doc' ->
    let rec probe n d =
      if n = 0 then J.to_int d
      else
        Option.bind (J.member "k" d) (fun l ->
            Option.bind (J.to_list l) (function
              | [ inner ] -> probe (n - 1) inner
              | _ -> None))
    in
    check (Alcotest.option Alcotest.int) "leaf survives" (Some 7)
      (probe depth doc')

(* The snapshot fingerprint travels through BENCH_persist.json; the JSON
   projection must invert exactly, or the CI checker would compare the
   wrong configuration. *)
let test_json_fingerprint_roundtrip () =
  let fp =
    { Persist.Snapshot.fp_backend = "acc"; fp_isa = "modified";
      fp_chaining = "sw_pred_ras"; fp_engine = "threaded"; fp_n_accs = 4;
      fp_hot_threshold = 45; fp_max_superblock = 200;
      fp_stop_at_translated = false; fp_fuse_mem = true;
      fp_region_threshold = 100; fp_region_max_slots = 1024;
      fp_superops = true; fp_tcache_max_slots = max_int;
      fp_image_digest = "00ff a\"b,c" }
  in
  let doc = Harness.Persist_bench.json_of_fp fp in
  match Obs.Json.parse_string (Obs.Json.to_string doc) with
  | Error e -> Alcotest.fail e
  | Ok doc' -> (
    match Harness.Persist_bench.fp_of_json doc' with
    | None -> Alcotest.fail "fingerprint projection did not parse back"
    | Some fp' -> check Alcotest.bool "fields identical" true (fp = fp'))

let test_envelope () =
  Obs.set_enabled true;
  Obs.bump c_a 9;
  let path = Filename.temp_file "obs" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Envelope.write_telemetry path ~jobs:2 (Obs.collect ());
      match Obs.Json.parse_file path with
      | Error e -> Alcotest.fail e
      | Ok doc ->
        let module J = Obs.Json in
        check
          (Alcotest.option Alcotest.string)
          "schema"
          (Some Obs.Envelope.telemetry_schema)
          (Obs.Envelope.schema_of doc);
        check (Alcotest.option Alcotest.int) "envelope version" (Some 1)
          (Option.bind (J.member "envelope" doc) J.to_int);
        check (Alcotest.option Alcotest.int) "jobs" (Some 2)
          (Option.bind (J.member "jobs" doc) J.to_int);
        List.iter
          (fun k ->
            check Alcotest.bool (k ^ " present") true
              (J.member k doc <> None))
          [ "git_rev"; "date"; "host"; "counters"; "spans"; "histograms" ];
        check (Alcotest.option Alcotest.int) "counter exported" (Some 9)
          (Option.bind
             (Option.bind (J.member "counters" doc) (J.member "test.a"))
             J.to_int))

let suite =
  [
    Alcotest.test_case "counters sum and reset" `Quick (fresh test_counters);
    Alcotest.test_case "max gauge keeps high water" `Quick (fresh test_max_gauge);
    Alcotest.test_case "histogram bucketing" `Quick (fresh test_histogram);
    Alcotest.test_case "histogram saturation counted" `Quick
      (fresh test_histogram_saturation);
    Alcotest.test_case "spans time and count" `Quick (fresh test_spans);
    Alcotest.test_case "disabled is a no-op" `Quick (fresh test_disabled_is_noop);
    Alcotest.test_case "slabs merge across domains" `Quick (fresh test_domain_merge);
    Alcotest.test_case "telemetry off is observation-free" `Quick
      (fresh test_off_is_observation_free);
    Alcotest.test_case "counters match VM stat structs (all modes)" `Slow
      (fresh test_counters_match_stats);
    Alcotest.test_case "pool merge equals serial totals" `Slow
      (fresh test_pool_merge_equals_serial);
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json rejects malformed input" `Quick
      test_json_rejects_garbage;
    Alcotest.test_case "json errors carry byte positions" `Quick
      test_json_errors_carry_position;
    Alcotest.test_case "json deep nesting roundtrip" `Quick
      test_json_deep_nesting;
    Alcotest.test_case "fingerprint json roundtrip" `Quick
      test_json_fingerprint_roundtrip;
    Alcotest.test_case "envelope export" `Quick (fresh test_envelope);
  ]
