(* Differential tests for the threaded-code execution engine and its
   region tier-up: sink-less VM runs through the closure-compiled path —
   and through region-promoted closures with bulk accounting — must be
   observationally identical to the instrumented match engine: same
   architected state, same statistics, same segment accounting — across
   every backend/ISA/chaining mode, across cache flushes, and through
   trap/PEI repair. A final case checks that attaching a sink forces the
   instrumented engine regardless of the configured one (identical event
   streams). *)

open Oracle

let check = Alcotest.check

(* Everything observable about a sink-less VM run, rendered to one string
   so a mismatch report shows the complete picture. *)
type obs = {
  outcome : string;
  output : string;
  checksum : int64;
  i_exec : int;
  by_class : int array;
  alpha : int;
  frag_enters : int;
  dras_hits : int;
  dras_misses : int;
  interp : int;
  superblocks : int;
  segs : int * int * int * int * int;
  flushes : int;
}

let show o =
  let b1, b2, b3, b4, b5 = o.segs in
  Printf.sprintf
    "outcome=%s output=%S regs=%#Lx i_exec=%d by_class=[%s] alpha=%d \
     frag_enters=%d dras=%d/%d interp=%d superblocks=%d \
     segs=%d/%d/%d/%d/%d flushes=%d"
    o.outcome o.output o.checksum o.i_exec
    (String.concat ";" (Array.to_list (Array.map string_of_int o.by_class)))
    o.alpha o.frag_enters o.dras_hits o.dras_misses o.interp o.superblocks b1
    b2 b3 b4 b5 o.flushes

let run_vm ~engine ?(flush_every = 0) ?sink ~(mode : Lockstep.mode) prog : obs
    =
  let cfg =
    {
      Core.Config.default with
      isa = mode.isa;
      chaining = mode.chaining;
      fuse_mem = mode.fuse_mem;
      hot_threshold = 10;
      engine;
      (* aggressive promotion so test-sized programs actually tier up
         when [engine = Region]; inert otherwise *)
      region_threshold = 4;
    }
  in
  let vm = Core.Vm.create ~cfg ~kind:mode.kind prog in
  let boundaries = ref 0 in
  let boundary () =
    incr boundaries;
    if flush_every > 0 && !boundaries mod flush_every = 0 then Core.Vm.flush vm
  in
  let outcome = Core.Vm.run ?sink ~boundary ~fuel:10_000_000 vm in
  let outcome =
    match outcome with
    | Core.Vm.Exit c -> Printf.sprintf "exit:%d" c
    | Core.Vm.Fault tr -> Format.asprintf "trap:%a" Alpha.Interp.pp_trap tr
    | Core.Vm.Out_of_fuel -> "fuel"
  in
  let i_exec, by_class, alpha, frag_enters, dras_hits, dras_misses =
    match (Core.Vm.acc_exec vm, Core.Vm.straight_exec vm) with
    | Some ex, _ ->
      ( ex.stats.i_exec,
        Array.copy ex.stats.by_class,
        ex.stats.alpha_retired,
        ex.stats.frag_enters,
        ex.stats.ret_dras_hits,
        ex.stats.ret_dras_misses )
    | None, Some ex ->
      ( ex.stats.i_exec,
        Array.copy ex.stats.by_class,
        ex.stats.alpha_retired,
        ex.stats.frag_enters,
        ex.stats.ret_dras_hits,
        ex.stats.ret_dras_misses )
    | None, None -> assert false
  in
  {
    outcome;
    output = Core.Vm.output vm;
    checksum = Core.Vm.reg_checksum vm;
    i_exec;
    by_class;
    alpha;
    frag_enters;
    dras_hits;
    dras_misses;
    interp = vm.interp_insns;
    superblocks = vm.superblocks;
    segs =
      ( vm.segs.branch_exits,
        vm.segs.pal_exits,
        vm.segs.dispatch_misses,
        vm.segs.trap_recoveries,
        vm.segs.fuel_stops );
    flushes = vm.segs.flushes;
  }

let check_engines name ?flush_every ~mode prog =
  let threaded = run_vm ~engine:Core.Config.Threaded ?flush_every ~mode prog in
  let matched = run_vm ~engine:Core.Config.Matched ?flush_every ~mode prog in
  let region = run_vm ~engine:Core.Config.Region ?flush_every ~mode prog in
  check Alcotest.string name (show matched) (show threaded);
  check Alcotest.string (name ^ " [region]") (show matched) (show region);
  threaded

(* ---------- generated programs, every mode ---------- *)

let test_engines_agree () =
  let translated = ref 0 in
  for seed = 1 to 6 do
    let prog = Gen.generate ~seed in
    let image = Gen.assemble prog in
    List.iter
      (fun mode ->
        let name =
          Printf.sprintf "seed %d %s" seed (Lockstep.mode_name mode)
        in
        let o = check_engines name ~mode image in
        translated := !translated + o.alpha)
      Lockstep.all_modes
  done;
  check Alcotest.bool "translated code was exercised" true (!translated > 0)

(* ---------- cache flushes mid-run (generation bump, full recompile) --- *)

let test_engines_agree_with_flush () =
  for seed = 1 to 4 do
    let prog = Gen.generate ~seed in
    let image = Gen.assemble prog in
    List.iter
      (fun mode ->
        let name =
          Printf.sprintf "flush seed %d %s" seed (Lockstep.mode_name mode)
        in
        let o = check_engines name ~flush_every:3 ~mode image in
        ignore o)
      Lockstep.all_modes
  done

(* ---------- trap/PEI repair through compiled closures ---------- *)

(* The faulting memory access sits on a translated hot path: a flag that
   is zero on all but one iteration steers its effective address, so the
   fault fires from inside a fragment and recovery must run through the
   PEI tables (closure cold path). *)
let trap_image body =
  Alpha.Assembler.assemble
    (Printf.sprintf
       {|
  .text
_start:
  la fp, buf
  ldiq t0, 9
  ldiq t8, 30
loop:
  cmpeq t8, 4, t9
%s
  addq t0, 1, t0
  subq t8, 1, t8
  bne t8, loop
  clr v0
  call_pal 0
  .data
  .align 8
buf:
  .space 64
|}
       body)

let trap_modes =
  List.filter
    (fun (m : Lockstep.mode) ->
      m.chaining = Core.Config.Sw_pred_ras && not m.fuse_mem)
    Lockstep.all_modes

let test_trap_repair_identical () =
  let cases =
    [
      ("unaligned load", "  addq t9, fp, t10\n  ldq t1, 0(t10)");
      ("unaligned store", "  addq t9, fp, t10\n  stq t0, 0(t10)");
      ("unmapped load", "  sll t9, 23, t10\n  addq t10, fp, t10\n  ldq t1, 0(t10)");
      ("unmapped store", "  sll t9, 23, t10\n  addq t10, fp, t10\n  stq t0, 0(t10)");
    ]
  in
  List.iter
    (fun (what, body) ->
      let image = trap_image body in
      List.iter
        (fun mode ->
          let name =
            Printf.sprintf "%s %s" what (Lockstep.mode_name mode)
          in
          let o = check_engines name ~mode image in
          let _, _, _, recoveries, _ = o.segs in
          check Alcotest.bool (name ^ ": recovered via PEI") true
            (recoveries > 0))
        trap_modes)
    cases

(* ---------- region tier-up: promotion, flush, patch invalidation ------ *)

(* The differential cases above already prove the region engine
   observationally identical to the instrumented one; these cases prove
   the coverage is not vacuous — regions really compile, charge their
   statistics in bulk, and get torn down by flushes and chain patches —
   by diffing the engine's telemetry counters around a run. *)

let cget snap n = Option.value ~default:0 (Obs.find snap n)

let with_counters f =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_enabled false)
    (fun () ->
      let r = f () in
      (r, Obs.collect ()))

let region_mode : Lockstep.mode =
  { kind = Core.Vm.Acc; isa = Core.Config.Modified;
    chaining = Core.Config.Sw_pred_ras; fuse_mem = false }

let workload name =
  match Workloads.find name with
  | Some w -> Workloads.program ~scale:1 w
  | None -> Alcotest.fail ("missing workload " ^ name)

let test_region_promotes () =
  let image = workload "gzip" in
  let matched = run_vm ~engine:Core.Config.Matched ~mode:region_mode image in
  let region, snap =
    with_counters (fun () ->
        run_vm ~engine:Core.Config.Region ~mode:region_mode image)
  in
  check Alcotest.string "gzip: region = matched" (show matched) (show region);
  check Alcotest.bool "regions were compiled" true
    (cget snap "engine.region_compiles" > 0);
  check Alcotest.bool "regions charged stats in bulk" true
    (cget snap "engine.region_exits" > 0)

(* A flush bumps the cache generation mid-run while regions are live: the
   engine must drop every region closure with the fragments and then
   re-promote from fresh profile counts — and still match the
   instrumented engine exactly. *)
let test_region_flush_mid_region () =
  let image = workload "gzip" in
  let matched =
    run_vm ~engine:Core.Config.Matched ~flush_every:5 ~mode:region_mode image
  in
  let region, snap =
    with_counters (fun () ->
        run_vm ~engine:Core.Config.Region ~flush_every:5 ~mode:region_mode
          image)
  in
  check Alcotest.string "gzip+flush: region = matched" (show matched)
    (show region);
  check Alcotest.bool "re-promoted after generation bump" true
    (cget snap "engine.region_compiles" >= 2)

(* Chain patching rewrites a Call_xlate slot inside an already-promoted
   region (aggressive promotion makes this the common case: early
   fragments tier up before their exits are chained). The engine must
   invalidate the stale region closure — its precomputed tallies and
   block graph no longer describe the cache — and re-promote later. *)
let test_region_patch_invalidates () =
  let image = workload "gzip" in
  let matched = run_vm ~engine:Core.Config.Matched ~mode:region_mode image in
  let region, snap =
    with_counters (fun () ->
        run_vm ~engine:Core.Config.Region ~mode:region_mode image)
  in
  check Alcotest.string "gzip: region = matched after patches" (show matched)
    (show region);
  check Alcotest.bool "a chain patch invalidated a live region" true
    (cget snap "engine.region_invalidations" >= 1)

(* Superop fusion rides on promotion (cfg.superops defaults on, so every
   differential Region case above already runs fused). This case pins the
   fused-closure lifecycle: promoted regions really fuse per-block
   closures, a chain patch landing on a slot inside a live fused region
   drops those closures and restores the slot-granular entry op (the run
   completing identically to the instrumented engine proves the restored
   op is the right one), and re-promotion leaves live fused blocks
   behind. *)
let test_fused_patch_drops_closures () =
  let image = workload "gzip" in
  let matched = run_vm ~engine:Core.Config.Matched ~mode:region_mode image in
  let cfg =
    {
      Core.Config.default with
      isa = region_mode.isa;
      chaining = region_mode.chaining;
      fuse_mem = region_mode.fuse_mem;
      hot_threshold = 10;
      engine = Core.Config.Region;
      region_threshold = 4;
    }
  in
  let vm = Core.Vm.create ~cfg ~kind:region_mode.kind image in
  let _, snap = with_counters (fun () -> Core.Vm.run ~fuel:10_000_000 vm) in
  check Alcotest.string "fused run output = matched" matched.output
    (Core.Vm.output vm);
  check Alcotest.bool "fused run checksum = matched" true
    (Int64.equal matched.checksum (Core.Vm.reg_checksum vm));
  check Alcotest.bool "blocks were fused" true
    (cget snap "engine.superop_fusions" > 0);
  check Alcotest.bool "live regions carry fused blocks" true
    (Core.Vm.fused_block_count vm > 0);
  check Alcotest.bool "chain patches invalidated live fused regions" true
    (cget snap "engine.region_invalidations" >= 1
    && cget snap "tcache.patches" >= 1);
  (* invalidation restored entry ops and dropped closures; the later
     re-promotions rebuilt some, so compiles strictly exceed live
     regions *)
  check Alcotest.bool "invalidated regions were re-promoted" true
    (cget snap "engine.region_compiles" > Core.Vm.region_count vm
    || cget snap "engine.region_invalidations" = 0)

(* ---------- a sink forces the instrumented engine ---------- *)

let test_sink_forces_instrumented () =
  let prog = Gen.generate ~seed:3 in
  let image = Gen.assemble prog in
  let mode = List.hd trap_modes in
  let record () =
    let evs = ref [] in
    let sink ev = evs := ev :: !evs in
    let o = run_vm ~engine:Core.Config.Threaded ~sink ~mode image in
    (o, List.rev !evs)
  in
  let o1, evs1 = record () in
  let evs2 =
    let evs = ref [] in
    let sink ev = evs := ev :: !evs in
    ignore (run_vm ~engine:Core.Config.Matched ~sink ~mode image);
    List.rev !evs
  in
  check Alcotest.bool "sink-attached run emitted events" true (evs1 <> []);
  check Alcotest.int "same event count under both engine settings"
    (List.length evs2) (List.length evs1);
  check Alcotest.bool "identical event streams" true (evs1 = evs2);
  check Alcotest.int "events cover executed translated slots" o1.i_exec
    (List.length evs1)

let suite =
  [
    Alcotest.test_case "closure vs match engine, all modes" `Quick
      test_engines_agree;
    Alcotest.test_case "closure vs match engine under flushes" `Quick
      test_engines_agree_with_flush;
    Alcotest.test_case "trap/PEI repair identical" `Quick
      test_trap_repair_identical;
    Alcotest.test_case "region tier-up promotes and agrees" `Quick
      test_region_promotes;
    Alcotest.test_case "flush tears down live regions" `Quick
      test_region_flush_mid_region;
    Alcotest.test_case "chain patch invalidates live regions" `Quick
      test_region_patch_invalidates;
    Alcotest.test_case "patch drops fused closures, restores entry op" `Quick
      test_fused_patch_drops_closures;
    Alcotest.test_case "sink forces the instrumented engine" `Quick
      test_sink_forces_instrumented;
  ]
