(* Tests for the lockstep differential oracle: agreement across every
   backend/chaining mode on generated programs, trap/PEI repair and
   mid-run flush coverage, the delta-debugging shrinker, the
   corrupt-state self-test (the oracle must catch an injected bug), and
   the interpreter-reentry accounting invariant the oracle relies on. *)

open Oracle

let check = Alcotest.check

let asm = Alpha.Assembler.assemble

let agree name result =
  match result with
  | Lockstep.Agree c -> c
  | Lockstep.Diverge d ->
    Alcotest.failf "%s: unexpected divergence:@\n%a" name Lockstep.pp_divergence
      d

(* ---------- generated programs agree in every mode ---------- *)

let test_lockstep_agrees () =
  for seed = 1 to 6 do
    let prog = Gen.generate ~seed in
    let image = Gen.assemble prog in
    List.iter
      (fun mode ->
        let name = Printf.sprintf "seed %d %s" seed (Lockstep.mode_name mode) in
        let c = agree name (Lockstep.run ~mode image) in
        check Alcotest.bool (name ^ " retired > 0") true (c.Lockstep.retired > 0))
      Lockstep.all_modes
  done

(* ---------- deterministic trap/PEI repair ---------- *)

(* The faulting instruction sits on the hot path: its effective address
   is computed from a flag that is 0 on every iteration but one, so by
   the time it faults the loop is translated and recovery must run
   through the PEI tables. *)
let trap_prog body =
  asm
    (Printf.sprintf
       {|
  .text
_start:
  la fp, buf
  ldiq t0, 7
  ldiq t8, 40
loop:
  cmpeq t8, 3, t9
%s
  addq t0, 1, t0
  subq t8, 1, t8
  bne t8, loop
  clr v0
  call_pal 0
  .data
  .align 8
buf:
  .space 64
|}
       body)

let test_trap_repair () =
  let cases =
    [
      ("unaligned load", "  addq t9, fp, t10\n  ldq t1, 0(t10)", "unaligned");
      ("unaligned store", "  addq t9, fp, t10\n  stq t0, 0(t10)", "unaligned");
      ( "unmapped load",
        "  sll t9, 23, t10\n  addq t10, fp, t10\n  ldq t1, 0(t10)",
        "mem_fault" );
      ( "unmapped store",
        "  sll t9, 23, t10\n  addq t10, fp, t10\n  stq t0, 0(t10)",
        "mem_fault" );
    ]
  in
  List.iter
    (fun (what, body, kind) ->
      let image = trap_prog body in
      List.iter
        (fun mode ->
          let name = Printf.sprintf "%s %s" what (Lockstep.mode_name mode) in
          let c = agree name (Lockstep.run ~mode image) in
          check Alcotest.(option string) (name ^ " trap kind") (Some kind)
            c.Lockstep.trap;
          check Alcotest.bool
            (name ^ " recovered in translated code")
            true
            (c.Lockstep.trap_recoveries >= 1))
        Lockstep.all_modes)
    cases

(* PAL call in the hot loop: a segment boundary every iteration. s0 is
   never written by the program, so corrupting it at a boundary cannot be
   masked by later writes and must surface at the next comparison. *)
let corrupt_prog () =
  asm
    {|
  .text
_start:
  ldiq t0, 1
  ldiq t8, 40
loop:
  addq t0, 3, t0
  and t0, 63, a0
  addq a0, 48, a0
  call_pal 1
  subq t8, 1, t8
  bne t8, loop
  clr v0
  call_pal 0
|}

(* ---------- flush injection mid-run ---------- *)

(* In steady state the dispatch table keeps execution inside translated
   code, so boundaries are rare; the PAL call in [corrupt_prog] forces an
   exit — and thus a flush opportunity — every iteration. *)
let test_flush_midrun () =
  let image = corrupt_prog () in
  List.iter
    (fun mode ->
      let name = Printf.sprintf "flush %s" (Lockstep.mode_name mode) in
      let c = agree name (Lockstep.run ~flush_every:2 ~mode image) in
      check Alcotest.bool (name ^ " flushed") true (c.Lockstep.flushes >= 1);
      (* the program has a single hot loop, so more than one formed
         superblock means fragments re-formed after a flush *)
      check Alcotest.bool
        (name ^ " re-formed superblocks")
        true
        (c.Lockstep.superblocks >= 2))
    Lockstep.all_modes

(* ---------- the oracle catches an injected bug ---------- *)

let test_catches_corruption () =
  List.iter
    (fun mode ->
      let name = Printf.sprintf "corrupt %s" (Lockstep.mode_name mode) in
      let corrupt k (vm : Core.Vm.t) =
        if k = 3 then Alpha.Interp.set vm.interp 9 0xdeadbeefL
      in
      match Lockstep.run ~corrupt ~mode (corrupt_prog ()) with
      | Lockstep.Agree _ -> Alcotest.failf "%s: corruption went undetected" name
      | Lockstep.Diverge d ->
        check Alcotest.bool (name ^ " caught at a boundary") true
          (String.length d.Lockstep.where >= 8
          && String.sub d.Lockstep.where 0 8 = "boundary");
        check Alcotest.bool (name ^ " blames s0") true
          (List.exists
             (function Snapshot.Reg { r = 9; _ } -> true | _ -> false)
             d.Lockstep.mismatches);
        check Alcotest.bool (name ^ " has fragment disasm") true
          (d.Lockstep.frag_disasm <> None))
    [
      List.nth Lockstep.all_modes 0 (* acc/basic/no_pred *);
      List.nth Lockstep.all_modes 5 (* acc/modified/sw_pred.ras *);
      List.nth Lockstep.all_modes 8 (* straight/no_pred *);
    ]

(* ---------- ddmin shrinker ---------- *)

let test_ddmin () =
  let tests = ref 0 in
  let still_fails l =
    incr tests;
    List.mem 7 l && List.mem 13 l
  in
  let xs = List.init 20 (fun i -> i + 1) in
  let min = Shrink.minimize ~still_fails xs in
  check Alcotest.(list int) "1-minimal" [ 7; 13 ] min;
  check Alcotest.bool "bounded" true (!tests <= 400);
  (* a passing input is returned unchanged *)
  let id = Shrink.minimize ~still_fails:(fun _ -> false) xs in
  check Alcotest.(list int) "non-failing unchanged" xs id

(* ---------- interpreter-reentry accounting invariant ---------- *)

(* Every interpreted V-insn — including post-PAL and post-trap-recovery
   reentry steps — must be counted exactly once in both the VM's
   [interp_insns] and the cost model. The golden interpreter's [icount]
   over the same program bounds the total. *)
let test_reentry_accounting () =
  let image = corrupt_prog () in
  List.iter
    (fun mode ->
      let name = Printf.sprintf "accounting %s" (Lockstep.mode_name mode) in
      let cfg =
        {
          Core.Config.default with
          isa = mode.Lockstep.isa;
          chaining = mode.Lockstep.chaining;
          fuse_mem = mode.Lockstep.fuse_mem;
          hot_threshold = 10;
        }
      in
      let vm = Core.Vm.create ~cfg ~kind:mode.Lockstep.kind image in
      (match Core.Vm.run ~fuel:1_000_000 vm with
      | Core.Vm.Exit 0 -> ()
      | _ -> Alcotest.failf "%s: expected clean exit" name);
      check Alcotest.int (name ^ " vm counter = interp icount")
        vm.Core.Vm.interp.icount vm.Core.Vm.interp_insns;
      check Alcotest.int (name ^ " cost counter = interp icount")
        vm.Core.Vm.interp.icount (Core.Vm.cost vm).Core.Cost.interp_insns)
    Lockstep.all_modes

let suite =
  [
    Alcotest.test_case "lockstep agrees across modes" `Slow test_lockstep_agrees;
    Alcotest.test_case "trap/PEI repair in every mode" `Quick test_trap_repair;
    Alcotest.test_case "flush mid-run agrees" `Quick test_flush_midrun;
    Alcotest.test_case "injected corruption is caught" `Quick
      test_catches_corruption;
    Alcotest.test_case "ddmin shrinker" `Quick test_ddmin;
    Alcotest.test_case "reentry accounting invariant" `Quick
      test_reentry_accounting;
  ]
