(* Workload integration tests: all twelve SPEC analogues compile, run, and
   compute identical results under the plain interpreter, the DBT VM in
   representative modes, and the straightening backend; plus shape checks
   on their dynamic characteristics (each workload must actually exercise
   what it claims to). *)

let check = Alcotest.check

let reference = Hashtbl.create 16

let ref_of w =
  match Hashtbl.find_opt reference (w : Workloads.t).name with
  | Some r -> r
  | None ->
    let r = Workloads.reference w in
    Hashtbl.replace reference w.name r;
    r

let test_all_compile_and_run () =
  List.iter
    (fun (w : Workloads.t) ->
      let code, out, icount = ref_of w in
      check Alcotest.int (w.name ^ " exits 0") 0 code;
      check Alcotest.bool (w.name ^ " produces output") true (String.length out > 0);
      check Alcotest.bool
        (Printf.sprintf "%s is a real run (%d insns)" w.name icount)
        true
        (icount > 100_000 && icount < 3_000_000))
    Workloads.all

let vm_matches w ~kind ~isa ~chaining =
  let code, out, _ = ref_of w in
  let cfg = { Core.Config.default with isa; chaining } in
  let vm = Core.Vm.create ~cfg ~kind (Workloads.program w) in
  (match Core.Vm.run ~fuel:200_000_000 vm with
  | Core.Vm.Exit c ->
    check Alcotest.int ((w : Workloads.t).name ^ " exit") code c
  | Fault tr ->
    Alcotest.failf "%s: %a" w.name Alpha.Interp.pp_trap tr
  | Out_of_fuel -> Alcotest.failf "%s: out of fuel" w.name);
  check Alcotest.string (w.name ^ " output") out (Core.Vm.output vm);
  vm

let test_dbt_equivalence_modified () =
  List.iter
    (fun w ->
      let vm =
        vm_matches w ~kind:Core.Vm.Acc ~isa:Core.Config.Modified
          ~chaining:Core.Config.Sw_pred_ras
      in
      let ex = Option.get (Core.Vm.acc_exec vm) in
      (* the hot threshold must have been crossed: most work translated *)
      let frac =
        float_of_int ex.stats.alpha_retired
        /. float_of_int (ex.stats.alpha_retired + vm.interp_insns)
      in
      check Alcotest.bool
        (Printf.sprintf "%s mostly translated (%.2f)" (w : Workloads.t).name frac)
        true (frac > 0.80))
    Workloads.all

let test_dbt_equivalence_basic () =
  List.iter
    (fun w ->
      ignore
        (vm_matches w ~kind:Core.Vm.Acc ~isa:Core.Config.Basic
           ~chaining:Core.Config.No_pred))
    Workloads.all

let test_straight_equivalence () =
  List.iter
    (fun w ->
      ignore
        (vm_matches w ~kind:Core.Vm.Straight_only ~isa:Core.Config.Modified
           ~chaining:Core.Config.Sw_pred_ras))
    Workloads.all

(* ---------- per-workload dynamic-signature checks ---------- *)

let count_events w =
  let prog = Workloads.program w in
  let st = Alpha.Interp.create prog in
  let loads = ref 0 and stores = ref 0 and branches = ref 0 in
  let calls = ref 0 and rets = ref 0 and ind_jumps = ref 0 in
  let muls = ref 0 and cmovs = ref 0 and total = ref 0 in
  let sink (e : Machine.Ev.t) =
    incr total;
    match e.cls with
    | Machine.Ev.Load -> incr loads
    | Store -> incr stores
    | Cond_br -> incr branches
    | Call -> incr calls
    | Ret -> incr rets
    | Jump -> if e.pred = Machine.Ev.P_indirect then incr ind_jumps
    | Mul -> incr muls
    | Alu -> ()
  in
  ignore (Alpha.Interp.run_ev ~fuel:200_000_000 st ~sink);
  ignore cmovs;
  let pct x = 100.0 *. float_of_int !x /. float_of_int !total in
  (pct loads, pct stores, pct branches, pct calls, pct rets, pct ind_jumps, pct muls)

let find name = Option.get (Workloads.find name)

let test_signature_perlbmk_indirect () =
  (* the interpreter-dispatch workload must be indirect-jump heavy *)
  let _, _, _, _, _, ind, _ = count_events (find "perlbmk") in
  check Alcotest.bool (Printf.sprintf "perlbmk indirect %.2f%%" ind) true (ind > 1.0)

let test_signature_parser_calls () =
  let _, _, _, calls, rets, _, _ = count_events (find "parser") in
  check Alcotest.bool (Printf.sprintf "parser calls %.2f%%" calls) true (calls > 1.5);
  check Alcotest.bool "balanced returns" true (rets > 1.5)

let test_signature_mcf_loads () =
  let loads, _, _, _, _, _, _ = count_events (find "mcf") in
  check Alcotest.bool (Printf.sprintf "mcf load-heavy %.1f%%" loads) true
    (loads > 20.0)

let test_signature_crafty_logical () =
  let _, _, _, _, _, _, muls = count_events (find "crafty") in
  (* popcount uses multiplies; most of the rest is logical ALU *)
  check Alcotest.bool (Printf.sprintf "crafty muls %.2f%%" muls) true (muls > 0.5)

let test_signature_gcc_branchy () =
  let _, _, branches, _, _, _, _ = count_events (find "gcc") in
  check Alcotest.bool (Printf.sprintf "gcc branchy %.1f%%" branches) true
    (branches > 6.0)

let test_signature_gzip_bytes () =
  let loads, stores, _, _, _, _, _ = count_events (find "gzip") in
  check Alcotest.bool
    (Printf.sprintf "gzip touches memory (%.1f%% loads, %.1f%% stores)" loads stores)
    true
    (loads +. stores > 10.0)

let test_scale_parameter () =
  let w = find "gzip" in
  let _, _, i1 = Workloads.reference ~scale:1 w in
  let _, _, i2 = Workloads.reference ~scale:2 w in
  check Alcotest.bool (Printf.sprintf "scale grows work (%d -> %d)" i1 i2) true
    (i2 > i1 + (i1 / 3))

let test_registry_consistency () =
  check Alcotest.int "fourteen workloads" 14 (List.length Workloads.all);
  let names = List.map (fun (w : Workloads.t) -> w.name) Workloads.all in
  check Alcotest.int "unique names" 14
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun (w : Workloads.t) ->
      check Alcotest.bool (w.name ^ " has description") true
        (String.length w.description > 10))
    Workloads.all

let suite =
  [
    ("all twelve compile and run", `Slow, test_all_compile_and_run);
    ("DBT equivalence (modified/dual-RAS)", `Slow, test_dbt_equivalence_modified);
    ("DBT equivalence (basic/no_pred)", `Slow, test_dbt_equivalence_basic);
    ("straightening equivalence", `Slow, test_straight_equivalence);
    ("perlbmk is indirect-jump heavy", `Slow, test_signature_perlbmk_indirect);
    ("parser is call/return heavy", `Slow, test_signature_parser_calls);
    ("mcf is load heavy", `Slow, test_signature_mcf_loads);
    ("crafty uses multiplies", `Slow, test_signature_crafty_logical);
    ("gcc is branchy", `Slow, test_signature_gcc_branchy);
    ("gzip touches memory", `Slow, test_signature_gzip_bytes);
    ("scale parameter grows work", `Slow, test_scale_parameter);
    ("registry consistency", `Quick, test_registry_consistency);
  ]
