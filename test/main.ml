(* Test entry point: one alcotest run aggregating per-library suites. *)

let () =
  Alcotest.run "ildp_dbt"
    [
      ("machine", Test_machine.suite);
      ("alpha", Test_alpha.suite);
      ("semantics", Test_semantics.suite);
      ("accisa", Test_accisa.suite);
      ("core", Test_core.suite);
      ("translate", Test_translate.suite);
      ("random", Test_random.suite);
      ("uarch", Test_uarch.suite);
      ("minic", Test_minic.suite);
      ("workloads", Test_workloads.suite);
      ("harness", Test_harness.suite);
      ("pool", Test_pool.suite);
      ("service", Test_service.suite);
      ("oracle", Test_oracle.suite);
      ("superop", Test_superop.suite);
      ("stress", Test_stress.suite);
      ("exec_closure", Test_exec_closure.suite);
      ("obs", Test_obs.suite);
      ("persist", Test_persist.suite);
    ]
