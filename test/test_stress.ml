(* Tests for the adversarial stress generators: determinism of the
   generator itself, each arm demonstrably provoking the translator
   mechanism it targets (capacity flushes with region/fused-block
   invalidation, chaining collapse, dual-RAS overflow), and full lockstep
   agreement with the golden interpreter for every arm under all 11
   backend/ISA/chaining modes. *)

open Oracle

let check = Alcotest.check

let agree name result =
  match result with
  | Lockstep.Agree c -> c
  | Lockstep.Diverge d ->
    Alcotest.failf "%s: unexpected divergence:@\n%a" name Lockstep.pp_divergence
      d

(* ---------- generator determinism ---------- *)

let test_determinism () =
  for seed = 1 to 5 do
    check Alcotest.string
      (Printf.sprintf "mixed seed %d: byte-identical source" seed)
      (Gen.source (Stress.generate ~seed))
      (Gen.source (Stress.generate ~seed))
  done;
  List.iter
    (fun arm ->
      check Alcotest.string
        (Stress.arm_name arm ^ ": byte-identical source")
        (Gen.source (Stress.single arm ~seed:7))
        (Gen.source (Stress.single arm ~seed:7)))
    Stress.all_arms;
  check Alcotest.bool "different seeds differ" false
    (Gen.source (Stress.generate ~seed:1) = Gen.source (Stress.generate ~seed:2))

(* ---------- per-arm target counters ---------- *)

let run_vm ~cfg prog =
  let vm = Core.Vm.create ~cfg ~kind:Core.Vm.Acc prog in
  (match Core.Vm.run ~fuel:50_000_000 vm with
  | Core.Vm.Exit _ -> ()
  | Core.Vm.Fault tr ->
    Alcotest.failf "stress arm trapped: %s"
      (Format.asprintf "%a" Alpha.Interp.pp_trap tr)
  | Core.Vm.Out_of_fuel -> Alcotest.fail "stress arm ran out of fuel");
  vm

let stats vm = (Option.get (Core.Vm.acc_exec vm)).Core.Exec_acc.stats

let threaded_cfg =
  { Core.Config.default with
    engine = Core.Config.Threaded; hot_threshold = 10 }

let chain_share vm =
  let st = stats vm in
  float_of_int st.by_class.(2) /. float_of_int (max 1 st.i_exec)

(* Flush storm under a bounded cache on the fused region engine: phase
   migration must force capacity flushes, each killing live regions and
   fused blocks. *)
let test_flush_storm () =
  let prog = Gen.assemble (Stress.single ~iters:256 Stress.Flush_storm ~seed:7) in
  let cfg =
    { Core.Config.default with
      engine = Core.Config.Region; superops = true; region_threshold = 4;
      hot_threshold = 10; tcache_max_slots = 128 }
  in
  let vm = run_vm ~cfg prog in
  let segs = vm.Core.Vm.segs in
  check Alcotest.bool "capacity flushes fired" true
    (segs.Core.Vm.capacity_flushes > 0);
  check Alcotest.bool "flushes recorded" true
    (segs.Core.Vm.flushes >= segs.Core.Vm.capacity_flushes);
  check Alcotest.bool "regions invalidated" true
    (segs.Core.Vm.region_invalidations > 0);
  check Alcotest.bool "fused blocks invalidated" true
    (segs.Core.Vm.fused_invalidations > 0)

(* Unbounded cache: the same program must never flush — the counter is
   specific to the capacity policy, not flushing in general. *)
let test_flush_storm_unbounded () =
  let prog = Gen.assemble (Stress.single ~iters:256 Stress.Flush_storm ~seed:7) in
  let vm = run_vm ~cfg:threaded_cfg prog in
  check Alcotest.int "no capacity flushes without a bound" 0
    vm.Core.Vm.segs.Core.Vm.capacity_flushes

(* Megamorphic indirect jumps: chain-class instruction share must dwarf
   a well-behaved workload's under the identical configuration, and the
   dispatch path must be exercised harder. *)
let test_megamorphic () =
  let prog = Gen.assemble (Stress.single ~iters:256 Stress.Megamorphic ~seed:7) in
  let mega = run_vm ~cfg:threaded_cfg prog in
  let gzip =
    let w = List.find (fun (w : Workloads.t) -> w.name = "gzip") Workloads.all in
    run_vm ~cfg:threaded_cfg (Workloads.program ~scale:1 w)
  in
  let ms = chain_share mega and gs = chain_share gzip in
  if ms < 4.0 *. gs then
    Alcotest.failf "chain share %.2f%% not >= 4x gzip's %.2f%%" (100.0 *. ms)
      (100.0 *. gs);
  check Alcotest.bool "dispatch misses exceed gzip's" true
    (mega.Core.Vm.segs.Core.Vm.dispatch_misses
    > gzip.Core.Vm.segs.Core.Vm.dispatch_misses)

(* Call towers 16-24 deep against the 8-entry dual RAS: every iteration
   overflows the stack, and the return hit rate collapses below a
   call-balanced workload's. *)
let test_call_tower () =
  let prog = Gen.assemble (Stress.single ~iters:256 Stress.Call_tower ~seed:7) in
  let vm = run_vm ~cfg:threaded_cfg prog in
  let dras = Core.Vm.dual_ras vm in
  check Alcotest.bool "dual-RAS overflows fired" true
    (dras.Machine.Dual_ras.overflows > 0);
  let st = stats vm in
  let total = st.ret_dras_hits + st.ret_dras_misses in
  check Alcotest.bool "returns executed" true (total > 0);
  let rate = float_of_int st.ret_dras_hits /. float_of_int total in
  if rate >= 0.75 then
    Alcotest.failf "RAS hit rate %.1f%% not degraded" (100.0 *. rate)

(* ---------- lockstep agreement, all arms x all modes ---------- *)

let test_lockstep_all_modes () =
  List.iter
    (fun arm ->
      let prog = Gen.assemble (Stress.single ~iters:160 arm ~seed:3) in
      (* the flush-storm runs additionally bound the cache so capacity
         flushes themselves are lockstep-verified in every mode *)
      let tcache_max_slots =
        match arm with Stress.Flush_storm -> 128 | _ -> max_int
      in
      List.iter
        (fun mode ->
          let name =
            Printf.sprintf "%s %s" (Stress.arm_name arm)
              (Lockstep.mode_name mode)
          in
          let c =
            agree name (Lockstep.run ~tcache_max_slots ~mode prog)
          in
          check Alcotest.bool (name ^ " retired > 0") true
            (c.Lockstep.retired > 0))
        Lockstep.all_modes)
    Stress.all_arms

(* The fused region tier through a capacity flush, under lockstep: the
   exact scenario the flush-storm bench runs, verified architecturally. *)
let test_lockstep_flush_storm_superops () =
  let prog = Gen.assemble (Stress.single ~iters:256 Stress.Flush_storm ~seed:7) in
  let mode = List.hd Lockstep.all_modes in
  let c =
    agree "flush-storm superops capped"
      (Lockstep.run ~superops:true ~tcache_max_slots:128 ~mode prog)
  in
  check Alcotest.bool "flushes observed under lockstep" true
    (c.Lockstep.flushes > 0)

let suite =
  [
    Alcotest.test_case "generator determinism" `Quick test_determinism;
    Alcotest.test_case "flush-storm forces capacity flushes" `Quick
      test_flush_storm;
    Alcotest.test_case "flush-storm benign when unbounded" `Quick
      test_flush_storm_unbounded;
    Alcotest.test_case "megamorphic collapses chaining" `Quick test_megamorphic;
    Alcotest.test_case "call-tower overflows dual RAS" `Quick test_call_tower;
    Alcotest.test_case "lockstep agreement, all arms x all modes" `Slow
      test_lockstep_all_modes;
    Alcotest.test_case "lockstep flush-storm through fused tier" `Quick
      test_lockstep_flush_storm_superops;
  ]
