(* Translation service: registry single-flight semantics, warm-start
   correctness through the daemon, per-tenant quota enforcement with
   exact fuel accounting, admission control, and drain-less shutdown. *)

module Registry = Service.Registry
module Daemon = Service.Daemon

let check = Alcotest.check

let gzip () = List.hd Workloads.all
let prog () = Workloads.program ~scale:1 (gzip ())

(* A real snapshot + fingerprint for registry tests. *)
let make_snapshot () =
  let p = prog () in
  let vm = Core.Vm.create ~kind:Core.Vm.Acc p in
  ignore (Core.Vm.run ~fuel:200_000 vm : Core.Vm.outcome);
  Core.Vm.save_snapshot vm

(* ---------- Registry ---------- *)

let test_registry_single_flight () =
  let snap = make_snapshot () in
  let fp = snap.Persist.Snapshot.fingerprint in
  let reg = Registry.create () in
  (* first acquire owns the build *)
  (match Registry.acquire reg fp with
  | Registry.Build -> ()
  | Registry.Warm _ -> Alcotest.fail "first acquire must build");
  (* concurrent acquires block on the builder *)
  let waiters =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> Registry.acquire reg fp))
  in
  Unix.sleepf 0.05;
  Registry.publish reg snap;
  List.iter
    (fun d ->
      match Domain.join d with
      | Registry.Warm s ->
        check Alcotest.bool "waiters share the published snapshot" true
          (s == snap)
      | Registry.Build -> Alcotest.fail "duplicate build granted")
    waiters;
  let st = Registry.stats reg in
  check Alcotest.int "one cold build" 1 st.cold_builds;
  check Alcotest.int "four warm hits" 4 st.warm_hits;
  check Alcotest.int "no abandons" 0 st.abandons;
  check Alcotest.int "one ready fingerprint" 1 st.ready

let test_registry_abandon_hands_off () =
  let snap = make_snapshot () in
  let fp = snap.Persist.Snapshot.fingerprint in
  let reg = Registry.create () in
  (match Registry.acquire reg fp with
  | Registry.Build -> ()
  | Registry.Warm _ -> Alcotest.fail "first acquire must build");
  Registry.abandon reg fp;
  (* an abandoned build never seeds warm starts: the next acquire is a
     fresh builder, not a warm hit on a partial cache *)
  (match Registry.acquire reg fp with
  | Registry.Build -> ()
  | Registry.Warm _ -> Alcotest.fail "abandoned build must not warm-start");
  let st = Registry.stats reg in
  check Alcotest.int "abandon recorded" 1 st.abandons;
  check Alcotest.int "two cold builds" 2 st.cold_builds;
  check Alcotest.int "nothing ready" 0 st.ready

let test_registry_first_publish_wins () =
  let snap = make_snapshot () in
  let snap2 = make_snapshot () in
  let fp = snap.Persist.Snapshot.fingerprint in
  let reg = Registry.create () in
  ignore (Registry.acquire reg fp : Registry.admission);
  Registry.publish reg snap;
  Registry.publish reg snap2;
  match Registry.acquire reg fp with
  | Registry.Warm s ->
    check Alcotest.bool "second publish ignored" true (s == snap)
  | Registry.Build -> Alcotest.fail "published fingerprint must warm-start"

(* ---------- Daemon: warm-start correctness ---------- *)

let ample = { Daemon.q_fuel = max_int / 2; q_image_bytes = max_int }

let request ?(tenant = "t0") ?(fuel = 100_000_000) label =
  { Daemon.rq_tenant = tenant; rq_label = label; rq_prog = prog (); rq_fuel = fuel }

(* N sessions of one image: exactly one cold build (single-flight, no
   duplicate translation), every warm session replays to the identical
   architected state with zero new superblocks. *)
let test_daemon_single_flight_sessions () =
  let svc = Daemon.create ~jobs:4 ~tenants:[ ("t0", ample) ] () in
  let sessions =
    List.init 8 (fun i ->
        match Daemon.submit svc (request (Printf.sprintf "s%d" i)) with
        | Ok s -> s
        | Error e -> Alcotest.failf "admission rejected: %s" e)
  in
  let results = List.map Daemon.wait sessions in
  Daemon.shutdown svc;
  let cold, warm =
    List.partition (fun (r : Daemon.result) -> not r.s_warm) results
  in
  check Alcotest.int "one cold build" 1 (List.length cold);
  check Alcotest.int "seven warm hits" 7 (List.length warm);
  let r0 = List.hd cold in
  List.iter
    (fun (r : Daemon.result) ->
      check Alcotest.string "output identical" r0.s_output r.s_output;
      check Alcotest.bool "checksum identical" true
        (r.s_checksum = r0.s_checksum);
      check Alcotest.int "warm session forms no superblocks" 0
        r.s_superblocks)
    warm;
  let st = Daemon.stats svc in
  check Alcotest.int "registry built once" 1 st.registry.Registry.cold_builds;
  check Alcotest.int "all admitted" 8 st.admitted;
  check Alcotest.int "all completed" 8 st.completed

(* ---------- Daemon: quotas ---------- *)

(* A tenant whose fuel quota is far below what the workload needs: the
   session must stop mid-run with a clean S_quota (never a crash), the
   fuel it consumed must be debited exactly, and the next request must be
   rejected at admission. *)
let test_quota_exceeded_mid_run () =
  let quota = 30_000 in
  let svc =
    Daemon.create ~jobs:1
      ~tenants:[ ("small", { Daemon.q_fuel = quota; q_image_bytes = max_int }) ]
      ()
  in
  let r =
    Daemon.run svc (request ~tenant:"small" ~fuel:100_000_000 "starved")
  in
  (match r.s_reason with
  | Daemon.S_quota -> ()
  | _ -> Alcotest.failf "expected S_quota, got %s" r.s_label);
  check Alcotest.bool "consumed at least the reserve" true
    (r.s_fuel_used >= quota);
  let st = Daemon.stats svc in
  check Alcotest.int "quota kill counted" 1 st.quota_kills;
  (* exact accounting: remaining = quota - consumed, to the instruction *)
  (match st.tenant_fuel_left with
  | [ ("small", left) ] ->
    check Alcotest.int "fuel ledger exact" (quota - r.s_fuel_used) left;
    check Alcotest.bool "quota exhausted" true (left <= 0)
  | _ -> Alcotest.fail "tenant ledger missing");
  (match Daemon.submit svc (request ~tenant:"small" "after") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "exhausted tenant must be rejected at admission");
  Daemon.shutdown svc;
  (* the quota-killed builder must have abandoned its slot, not published
     a partial cache *)
  let st = Daemon.stats svc in
  check Alcotest.int "partial build abandoned" 1
    st.registry.Registry.abandons;
  check Alcotest.int "nothing published" 0 st.registry.Registry.ready

(* Successful sessions are also debited exactly. *)
let test_fuel_ledger_exact_on_success () =
  let q = { Daemon.q_fuel = 10_000_000; q_image_bytes = max_int } in
  let svc = Daemon.create ~jobs:2 ~tenants:[ ("t0", q) ] () in
  let r1 = Daemon.run svc (request ~fuel:5_000_000 "a") in
  let r2 = Daemon.run svc (request ~fuel:5_000_000 "b") in
  Daemon.shutdown svc;
  (match (r1.s_reason, r2.s_reason) with
  | Daemon.S_exit _, Daemon.S_exit _ -> ()
  | _ -> Alcotest.fail "expected both sessions to exit");
  let st = Daemon.stats svc in
  match st.tenant_fuel_left with
  | [ ("t0", left) ] ->
    check Alcotest.int "ledger = quota - used(a) - used(b)"
      (q.Daemon.q_fuel - r1.s_fuel_used - r2.s_fuel_used)
      left
  | _ -> Alcotest.fail "tenant ledger missing"

(* ---------- Daemon: admission control ---------- *)

let test_admission_rejections () =
  let svc =
    Daemon.create ~jobs:1
      ~tenants:[ ("t0", { Daemon.q_fuel = 1_000; q_image_bytes = 4 }) ]
      ()
  in
  (match Daemon.submit svc (request ~tenant:"nobody" "x") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown tenant admitted");
  (match Daemon.submit svc (request ~tenant:"t0" "y") with
  | Error _ -> () (* image far larger than 4 bytes *)
  | Ok _ -> Alcotest.fail "oversized image admitted");
  (match Daemon.submit svc { (request ~tenant:"t0" "z") with rq_fuel = 0 } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero-fuel request admitted");
  let st = Daemon.stats svc in
  check Alcotest.int "three rejections" 3 st.rejected;
  check Alcotest.int "none admitted" 0 st.admitted;
  Daemon.shutdown svc;
  match Daemon.submit svc (request "w") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "shut-down service admitted a session"

(* capacity 1 over 1 worker: admission backpressure serialises the
   submissions, and every session still completes *)
let test_backpressure_completes () =
  let svc = Daemon.create ~jobs:1 ~capacity:1 ~tenants:[ ("t0", ample) ] () in
  let rs = List.init 4 (fun i -> Daemon.run svc (request (string_of_int i))) in
  Daemon.shutdown svc;
  List.iter
    (fun (r : Daemon.result) ->
      match r.s_reason with
      | Daemon.S_exit _ -> ()
      | _ -> Alcotest.failf "session %s did not exit cleanly" r.s_label)
    rs;
  let st = Daemon.stats svc in
  check Alcotest.int "all admitted" 4 st.admitted;
  check Alcotest.int "all completed" 4 st.completed

(* ---------- Daemon: drain-less shutdown ---------- *)

let test_shutdown_no_drain_refunds () =
  let q = { Daemon.q_fuel = 1_000_000_000; q_image_bytes = max_int } in
  let svc = Daemon.create ~jobs:1 ~capacity:16 ~tenants:[ ("t0", q) ] () in
  let sessions =
    List.init 6 (fun i ->
        match Daemon.submit svc (request (Printf.sprintf "s%d" i)) with
        | Ok s -> s
        | Error e -> Alcotest.failf "admission rejected: %s" e)
  in
  Daemon.shutdown ~drain:false svc;
  let rs = List.map Daemon.wait sessions in
  let cancelled =
    List.filter (fun (r : Daemon.result) -> r.s_reason = Daemon.S_cancelled) rs
  in
  let finished =
    List.filter
      (fun (r : Daemon.result) ->
        match r.s_reason with Daemon.S_exit _ -> true | _ -> false)
      rs
  in
  check Alcotest.int "every session resolved" 6
    (List.length cancelled + List.length finished);
  check Alcotest.bool "queued sessions were cancelled" true
    (List.length cancelled > 0);
  let st = Daemon.stats svc in
  check Alcotest.int "cancellations counted" (List.length cancelled)
    st.cancelled;
  (* cancelled reservations refunded in full; finished sessions debited
     exactly — the ledger closes to the instruction *)
  let used =
    List.fold_left (fun a (r : Daemon.result) -> a + r.s_fuel_used) 0 finished
  in
  match st.tenant_fuel_left with
  | [ ("t0", left) ] ->
    check Alcotest.int "ledger exact after cancellations"
      (q.Daemon.q_fuel - used) left
  | _ -> Alcotest.fail "tenant ledger missing"

let suite =
  [
    ("registry: single-flight under contention", `Quick,
     test_registry_single_flight);
    ("registry: abandon hands the build off", `Quick,
     test_registry_abandon_hands_off);
    ("registry: first publish wins", `Quick, test_registry_first_publish_wins);
    ("daemon: one build, warm sessions identical", `Quick,
     test_daemon_single_flight_sessions);
    ("daemon: quota exceeded mid-run is clean + exact", `Quick,
     test_quota_exceeded_mid_run);
    ("daemon: fuel ledger exact on success", `Quick,
     test_fuel_ledger_exact_on_success);
    ("daemon: admission rejections", `Quick, test_admission_rejections);
    ("daemon: backpressure completes", `Quick, test_backpressure_completes);
    ("daemon: drain-less shutdown refunds queued sessions", `Quick,
     test_shutdown_no_drain_refunds);
  ]
