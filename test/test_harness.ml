(* Harness smoke tests: experiment drivers run end-to-end, print a row per
   workload, and produce finite, sane numbers; the runner memoises. *)

let check = Alcotest.check

let render f =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  f fmt ~scale:1;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let all_names () = List.map (fun (w : Workloads.t) -> w.name) Workloads.all

let test_registry () =
  check Alcotest.int "13 experiments" 13 (List.length Harness.Experiments.all);
  List.iter
    (fun (e : Harness.Experiments.exp) ->
      check Alcotest.bool (e.id ^ " described") true (String.length e.desc > 5);
      check Alcotest.bool (e.id ^ " findable") true
        (Harness.Experiments.find e.id <> None))
    Harness.Experiments.all;
  check Alcotest.bool "unknown id" true (Harness.Experiments.find "nope" = None)

(* every experiment except table1 (pure configuration print) declares a
   non-empty run plan, and plans dedup to at most 12 workloads x configs *)
let test_plans_declared () =
  List.iter
    (fun (e : Harness.Experiments.exp) ->
      let n = List.length (e.plan ~scale:1) in
      if e.id = "table1" then check Alcotest.int "table1 plan empty" 0 n
      else check Alcotest.bool (e.id ^ " has a plan") true (n > 0))
    Harness.Experiments.all

let test_table1_prints_parameters () =
  let out = render Harness.Experiments.table1 in
  List.iter
    (fun needle ->
      check Alcotest.bool ("mentions " ^ needle) true (contains out needle))
    [ "gshare"; "BTB"; "dual-address RAS"; "128"; "FIFO"; "4/6/8 PEs" ]

let test_fig7_rows_and_sanity () =
  let out = render Harness.Experiments.fig7 in
  List.iter
    (fun n -> check Alcotest.bool ("row for " ^ n) true (contains out n))
    (all_names ());
  check Alcotest.bool "no NaNs" false (contains out "nan");
  (* the headline claims are printed *)
  check Alcotest.bool "global summary" true (contains out "global outputs")

let test_sec42_overhead_sane () =
  let out = render Harness.Experiments.sec42 in
  List.iter
    (fun n -> check Alcotest.bool ("row for " ^ n) true (contains out n))
    (all_names ());
  check Alcotest.bool "no NaNs" false (contains out "nan")

let test_runner_results_sane () =
  let w = Option.get (Workloads.find "gzip") in
  let r = Harness.Runner.acc w in
  check Alcotest.bool "work translated" true (r.a_alpha > 100_000);
  check Alcotest.bool "expansion in band" true
    (let e = float_of_int r.a_i_exec /. float_of_int r.a_alpha in
     e > 1.0 && e < 2.5);
  check Alcotest.bool "categories sum to 1" true
    (abs_float (Array.fold_left ( +. ) 0.0 r.a_cat_dyn -. 1.0) < 1e-6);
  check Alcotest.bool "dbt work order of magnitude" true
    (r.a_dbt_work > 100.0 && r.a_dbt_work < 5000.0)

let test_runner_memoises () =
  let w = Option.get (Workloads.find "gzip") in
  let a = Harness.Runner.acc w in
  let b = Harness.Runner.acc w in
  check Alcotest.bool "same physical result" true (a == b);
  let c = Harness.Runner.acc ~n_accs:8 w in
  check Alcotest.bool "different key, different run" true (c != a)

let test_original_vs_ildp_timing () =
  let w = Option.get (Workloads.find "gzip") in
  let o = Harness.Runner.original w in
  check Alcotest.bool "original IPC plausible" true (o.v_ipc > 0.5 && o.v_ipc <= 4.0);
  let params = { Uarch.Ildp.default_params with n_pe = 8 } in
  let i = Harness.Runner.acc ~ildp:params w in
  let it = Option.get i.a_t in
  check Alcotest.bool "ILDP V-IPC plausible" true (it.v_ipc > 0.3 && it.v_ipc <= 4.0);
  (* the ILDP machine executes MORE instructions for the same V-ISA work *)
  check Alcotest.bool "native IPC >= V-IPC" true (it.ipc >= it.v_ipc)

(* the shared relative-tolerance gates behind --check: symmetric per-row
   deviation, and the deliberately asymmetric geomean gate (regression
   fails, improvement only notes) *)
let test_check_rel_gate_directions () =
  let open Harness.Check in
  check Alcotest.bool "below tol exceeds" true
    (rel_exceeds ~tol:0.1 ~base:2.0 1.7);
  check Alcotest.bool "above tol exceeds" true
    (rel_exceeds ~tol:0.1 ~base:2.0 2.3);
  check Alcotest.bool "within tol" false (rel_exceeds ~tol:0.1 ~base:2.0 2.1);
  check Alcotest.bool "non-positive baseline never gates" false
    (rel_exceeds ~tol:0.1 ~base:0.0 99.0);
  let dir base current =
    match rel_direction ~tol:0.1 ~base current with
    | Below -> "below"
    | Within -> "within"
    | Above -> "above"
  in
  check Alcotest.string "regression" "below" (dir 2.0 1.5);
  check Alcotest.string "low edge inside" "within" (dir 2.0 1.85);
  check Alcotest.string "high edge inside" "within" (dir 2.0 2.15);
  check Alcotest.string "improvement" "above" (dir 2.0 2.5);
  check Alcotest.string "zero baseline" "within" (dir 0.0 99.0)

let test_check_gate_geomean_asymmetric () =
  let gate base current =
    let ok = ref true and lines = ref [] in
    Harness.Check.gate_geomean ~ok ~lines ~tol:0.1 ~what:"geomean speedup"
      ~base current;
    (!ok, String.concat "\n" !lines)
  in
  (* falling below the baseline is a CI failure *)
  let ok, out = gate 2.0 1.5 in
  check Alcotest.bool "regression fails" false ok;
  check Alcotest.bool "regression reported as FAIL" true (contains out "FAIL");
  (* exceeding it must never fail — only a baseline-refresh note *)
  let ok, out = gate 2.0 2.5 in
  check Alcotest.bool "improvement passes" true ok;
  check Alcotest.bool "improvement is a note" true (contains out "note");
  check Alcotest.bool "improvement is not a FAIL" false (contains out "FAIL");
  check Alcotest.bool "suggests refreshing baseline" true
    (contains out "refreshing the baseline");
  (* within tolerance is a plain ok line *)
  let ok, out = gate 2.0 2.05 in
  check Alcotest.bool "within passes" true ok;
  check Alcotest.bool "within is ok" true (contains out "ok   ")

let test_geomean_mean () =
  check (Alcotest.float 1e-9) "geomean" 2.0
    (Harness.Runner.geomean [ 1.0; 2.0; 4.0 ]);
  check (Alcotest.float 1e-9) "mean" 2.0 (Harness.Runner.mean [ 1.0; 2.0; 3.0 ]);
  check (Alcotest.float 1e-9) "empty geomean" 0.0 (Harness.Runner.geomean [])

let suite =
  [
    ("experiment registry", `Quick, test_registry);
    ("experiment plans declared", `Quick, test_plans_declared);
    ("table1 prints the configuration", `Quick, test_table1_prints_parameters);
    ("fig7 rows and sanity", `Slow, test_fig7_rows_and_sanity);
    ("sec42 rows and sanity", `Slow, test_sec42_overhead_sane);
    ("runner: sane gzip statistics", `Slow, test_runner_results_sane);
    ("runner: memoisation", `Slow, test_runner_memoises);
    ("runner: timing plausibility", `Slow, test_original_vs_ildp_timing);
    ("check: relative gates both directions", `Quick,
      test_check_rel_gate_directions);
    ("check: geomean gate asymmetry", `Quick,
      test_check_gate_geomean_asymmetric);
    ("geomean and mean", `Quick, test_geomean_mean);
  ]
